#include "mapping/simulation.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/error.h"
#include "dg/rk.h"
#include "mapping/config.h"
#include "trace/trace.h"

namespace wavepim::mapping {

namespace {

constexpr std::uint32_t kNoStep = std::numeric_limits<std::uint32_t>::max();

/// FNV-1a over a block's raw word storage — the witness's state hash
/// (same constants as the conformance suites' chip hashes).
std::uint64_t fnv1a_words(std::span<const float> words) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(words.data());
  for (std::size_t i = 0; i < words.size() * sizeof(float); ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

const char* to_string(ExecPath path) {
  switch (path) {
    case ExecPath::Emit:
      return "emit";
    case ExecPath::Replay:
      return "replay";
    case ExecPath::Compiled:
      return "compiled";
    case ExecPath::Word:
      return "word";
  }
  return "?";
}

bool PimSimulation::default_program_cache_enabled() {
  const char* env = std::getenv("WAVEPIM_PROGRAM_CACHE");
  if (env == nullptr) {
    return true;
  }
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}

ExecPath PimSimulation::default_exec_path() {
  const char* env = std::getenv("WAVEPIM_EXEC");
  if (env != nullptr) {
    if (std::strcmp(env, "emit") == 0) {
      return ExecPath::Emit;
    }
    if (std::strcmp(env, "replay") == 0) {
      return ExecPath::Replay;
    }
    if (std::strcmp(env, "compiled") == 0) {
      return ExecPath::Compiled;
    }
    if (std::strcmp(env, "word") == 0) {
      return ExecPath::Word;
    }
    WAVEPIM_REQUIRE(false,
                    "WAVEPIM_EXEC must be emit, replay, compiled or word");
  }
  return default_program_cache_enabled() ? ExecPath::Replay : ExecPath::Emit;
}

std::uint32_t PimSimulation::default_witness_interval() {
  const char* env = std::getenv("WAVEPIM_WITNESS");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') {
    return 0;
  }
  return static_cast<std::uint32_t>(value);
}

PimSimulation::PimSimulation(const Problem& problem, ExpansionMode mode,
                             pim::ChipConfig chip, mesh::Boundary boundary,
                             dg::AcousticMaterial acoustic,
                             dg::ElasticMaterial elastic)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size(), acoustic, elastic) {
  init_chip(std::move(chip));
}

namespace {

template <typename Physics>
void probe_heterogeneous(
    const mesh::StructuredMesh& mesh,
    const dg::MaterialField<typename Physics::Material>& materials,
    dg::FluxType flux, std::vector<VolumeCoeffs>& volume,
    std::vector<std::array<FluxCoeffs, 6>>& face_coeffs) {
  WAVEPIM_REQUIRE(materials.size() == mesh.num_elements(),
                  "one material per element required");
  volume.resize(mesh.num_elements());
  face_coeffs.resize(mesh.num_elements());
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto& mine = materials.at(e);
    volume[e] = probe_volume<Physics>(mine);
    for (mesh::Face f : mesh::kAllFaces) {
      const auto neighbor = mesh.neighbor(e, f);
      if (neighbor) {
        face_coeffs[e][mesh::index_of(f)] = probe_flux<Physics>(
            f, flux, mine, materials.at(*neighbor), /*boundary=*/false);
      } else {
        face_coeffs[e][mesh::index_of(f)] =
            probe_flux<Physics>(f, flux, mine, mine, /*boundary=*/true);
      }
    }
  }
}

}  // namespace

PimSimulation::PimSimulation(
    const Problem& problem, ExpansionMode mode, pim::ChipConfig chip,
    const dg::MaterialField<dg::AcousticMaterial>& materials,
    mesh::Boundary boundary)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size()) {
  WAVEPIM_REQUIRE(!dg::is_elastic(problem.kind),
                  "acoustic materials supplied for an elastic problem");
  probe_heterogeneous<dg::AcousticPhysics>(mesh_, materials,
                                           dg::flux_of(problem.kind),
                                           volume_coeffs_, flux_coeffs_);
  init_chip(std::move(chip));
}

PimSimulation::PimSimulation(
    const Problem& problem, ExpansionMode mode, pim::ChipConfig chip,
    const dg::MaterialField<dg::ElasticMaterial>& materials,
    mesh::Boundary boundary)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size()) {
  WAVEPIM_REQUIRE(dg::is_elastic(problem.kind),
                  "elastic materials supplied for an acoustic problem");
  probe_heterogeneous<dg::ElasticPhysics>(mesh_, materials,
                                          dg::flux_of(problem.kind),
                                          volume_coeffs_, flux_coeffs_);
  init_chip(std::move(chip));
}

PimSimulation::PimSimulation(const Problem& problem, ExpansionMode mode,
                             std::shared_ptr<pim::Chip> chip,
                             mesh::Boundary boundary,
                             dg::AcousticMaterial acoustic,
                             dg::ElasticMaterial elastic)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size(), acoustic, elastic) {
  WAVEPIM_REQUIRE(chip != nullptr, "pooled chip must not be null");
  check_capacity(chip->config());
  chip_ = std::move(chip);
  attach_chip();
}

void PimSimulation::check_capacity(const pim::ChipConfig& chip) const {
  const std::uint32_t bpe = blocks_per_element(setup_.mode());
  const std::uint64_t needed = problem_.num_elements() * bpe;
  const std::uint64_t blocks_per_slice =
      static_cast<std::uint64_t>(mesh_.elements_per_slice()) * bpe;
  if (needed > chip.num_blocks() &&
      chip.num_blocks() < 2 * blocks_per_slice) {
    // Even batched residency needs a window slice plus the staging slice
    // on chip. Report what would fit instead of a bare failure.
    std::string message =
        "problem '" + problem_.name() + "' needs " + std::to_string(needed) +
        " blocks, chip '" + chip.name + "' has " +
        std::to_string(chip.num_blocks()) +
        "; batched residency needs at least 2 resident Y-slices of " +
        std::to_string(blocks_per_slice) + " blocks each";
    try {
      const MappingConfig fit = choose_config(problem_, chip);
      message += "; config '" + fit.label() + "' with " +
                 std::to_string(fit.slices_per_batch) +
                 " resident slices applies";
    } catch (const CapacityError&) {
      message += "; no expansion mode fits this chip";
    }
    throw CapacityError(message);
  }
}

void PimSimulation::init_chip(pim::ChipConfig chip) {
  check_capacity(chip);
  chip_ = std::make_shared<pim::Chip>(std::move(chip));
  attach_chip();
}

void PimSimulation::attach_chip() {
  const std::uint32_t bpe = blocks_per_element(setup_.mode());
  const std::uint64_t needed = problem_.num_elements() * bpe;

  pricing_ = {};
  pricing_.model = &chip_->arith();
  const pim::Transfer hop{.src_block = 0, .dst_block = 5, .words = 1};
  pricing_.lut_unit = pricing_.rows_read(2) + pricing_.rows_written(1);
  pricing_.lut_unit += {chip_->interconnect().isolated_latency(hop),
                        chip_->interconnect().transfer_energy(hop)};

  placement_ = Placement(bpe);
  residency_ = std::make_unique<ResidencyManager>(
      *chip_, mesh_, bpe,
      static_cast<std::uint32_t>(setup_.ref().num_nodes()),
      element_state_bytes(problem_.kind, problem_.n1d));

  // Transfers carry virtual block ids. When the problem is batched those
  // exceed the chip's physical id range, so price them on an interconnect
  // built over an inflated copy of the same geometry (hop costs depend
  // only on id positions, never on how many other blocks exist, so the
  // resident ids price identically on either network).
  if (needed > chip_->config().num_blocks()) {
    pim::ChipConfig net_config = chip_->config();
    net_config.block_limit = 0;
    const std::uint64_t tiles =
        (needed + pim::ChipConfig::kBlocksPerTile - 1) /
        pim::ChipConfig::kBlocksPerTile;
    net_config.capacity = tiles * pim::ChipConfig::tile_bytes();
    owned_net_ = std::make_unique<pim::Interconnect>(net_config);
  }
  net_ = owned_net_ ? owned_net_.get() : &chip_->interconnect();

  volume_acc_.assign(needed, {});
  flux_acc_.assign(needed, {});
  integ_acc_.assign(needed, {});

  // Volume runs when a slice first becomes resident in a stage pass,
  // Integration just before it is stored for good (the periodic staging
  // slice is loaded twice and stored twice per pass).
  const auto& steps = residency_->schedule().steps;
  first_load_step_.assign(mesh_.num_slices(), kNoStep);
  last_store_step_.assign(mesh_.num_slices(), kNoStep);
  for (std::uint32_t idx = 0; idx < steps.size(); ++idx) {
    const BatchStep& step = steps[idx];
    if (step.kind == BatchStep::Kind::LoadSlices) {
      for (std::uint32_t s = step.first_slice; s <= step.last_slice; ++s) {
        if (first_load_step_[s] == kNoStep) {
          first_load_step_[s] = idx;
        }
      }
    } else if (step.kind == BatchStep::Kind::StoreSlices) {
      for (std::uint32_t s = step.first_slice; s <= step.last_slice; ++s) {
        last_store_step_[s] = idx;
      }
    }
  }

  build_face_pairings();
}

void PimSimulation::build_face_pairings() {
  // Pairing group (axis, parity): elements whose +axis face pairs them
  // with their +axis neighbour and whose coordinate along the axis has
  // that parity. dim() is a power of two, so for dim >= 2 the parity
  // split is a proper 2-colouring even across the periodic wrap; dim == 1
  // collapses to self-pairings that all land in parity 0.
  for (auto& group : face_pairings_) {
    group.clear();
  }
  for (mesh::Axis a : mesh::kAllAxes) {
    const mesh::Face plus = mesh::make_face(a, +1);
    for (mesh::ElementId e = 0; e < mesh_.num_elements(); ++e) {
      if (!mesh_.neighbor(e, plus)) {
        continue;  // reflective boundary: no exchange across this face
      }
      const std::uint32_t parity = mesh_.coords_of(e)[mesh::index_of(a)] % 2;
      face_pairings_[2 * mesh::index_of(a) + parity].push_back(e);
    }
  }
}

ThreadPool& PimSimulation::pool() {
  return owned_pool_ ? *owned_pool_ : ThreadPool::global();
}

void PimSimulation::set_num_threads(std::size_t num_threads) {
  owned_pool_ =
      num_threads == 0 ? nullptr : std::make_unique<ThreadPool>(num_threads);
}

void PimSimulation::ensure_cache() {
  if (cache_) {
    return;
  }
  trace::Span span("pim.build_cache");
  cache_ = std::make_shared<ProgramCache>(
      setup_, mesh_, volume_coeffs_.empty() ? nullptr : &volume_coeffs_,
      flux_coeffs_.empty() ? nullptr : &flux_coeffs_);
}

void PimSimulation::set_shared_cache(std::shared_ptr<ProgramCache> cache) {
  WAVEPIM_REQUIRE(cache != nullptr, "shared cache must not be null");
  WAVEPIM_REQUIRE(!cache_,
                  "set_shared_cache must precede the first cached step");
  WAVEPIM_REQUIRE(volume_coeffs_.empty() && flux_coeffs_.empty(),
                  "heterogeneous media lower per-element coefficients; only "
                  "uniform-material caches are shareable");
  const ElementSetup& theirs = cache->setup();
  WAVEPIM_REQUIRE(theirs.problem().kind == problem_.kind &&
                      theirs.problem().refinement_level ==
                          problem_.refinement_level &&
                      theirs.problem().n1d == problem_.n1d &&
                      theirs.mode() == setup_.mode(),
                  "shared cache was built for a different job class");
  cache_ = std::move(cache);
}

void PimSimulation::ensure_plan() {
  if (plan_) {
    return;
  }
  ensure_cache();
  trace::Span span("pim.build_plan");
  plan_ = std::make_unique<ExecutionPlan>(*cache_, mesh_, placement_,
                                          pricing_);
}

void PimSimulation::ensure_word_plan() {
  if (word_plan_) {
    return;
  }
  ensure_plan();
  trace::Span span("pim.build_word_plan");
  word_plan_ = std::make_unique<WordPlan>(*plan_);
}

const VolumeCoeffs* PimSimulation::volume_override(mesh::ElementId e) const {
  return volume_coeffs_.empty() ? nullptr : &volume_coeffs_[e];
}

const FluxCoeffs* PimSimulation::flux_override(mesh::ElementId e,
                                               mesh::Face f) const {
  return flux_coeffs_.empty() ? nullptr : &flux_coeffs_[e][mesh::index_of(f)];
}

void PimSimulation::load_state(const dg::Field& u) {
  WAVEPIM_REQUIRE(u.num_elements() == mesh_.num_elements() &&
                      u.num_vars() == problem_.num_vars() &&
                      u.nodes_per_element() ==
                          static_cast<std::size_t>(setup_.ref().num_nodes()),
                  "field shape does not match the problem");
  trace::Span span("pim.load_state");
  const bool resident = residency_->is_resident();
  const BlockResolver resolver(*chip_, residency_->table());
  // Elements own disjoint blocks (or disjoint backing columns), so
  // loading parallelizes trivially.
  pool().parallel_for(u.num_elements(), [&](std::size_t e) {
    for (std::uint32_t v = 0; v < problem_.num_vars(); ++v) {
      const std::uint32_t g = setup_.owner_of(v);
      const auto& layout = setup_.layout(g);
      const std::uint32_t slot = setup_.slot_of(v);
      const auto values = u.at(e, v);
      if (resident) {
        auto& block = resolver(
            placement_.block_of(static_cast<mesh::ElementId>(e), g));
        block.load_column(layout.col_var(slot), values);
        block.fill_column(layout.col_aux(slot), 0.0f,
                          static_cast<std::uint32_t>(values.size()));
      } else {
        const std::uint32_t vb =
            placement_.block_of(static_cast<mesh::ElementId>(e), g);
        const auto var = residency_->backing_column(vb, layout.col_var(slot));
        std::copy(values.begin(), values.end(), var.begin());
        const auto aux = residency_->backing_column(vb, layout.col_aux(slot));
        std::fill(aux.begin(), aux.end(), 0.0f);
      }
    }
  });
  if (resident) {
    // The one host->HBM->chip transfer of the whole state; batched runs
    // write the host-side backing store and the schedule's Load steps
    // price the staging instead.
    costs_.hbm += chip_->hbm().transfer_cost(
        element_state_bytes(problem_.kind, problem_.n1d) *
        mesh_.num_elements());
  }
}

dg::Field PimSimulation::read_state() {
  trace::Span span("pim.read_state");
  dg::Field u(mesh_.num_elements(), problem_.num_vars(),
              static_cast<std::size_t>(setup_.ref().num_nodes()));
  const bool resident = residency_->is_resident();
  const BlockResolver resolver(*chip_, residency_->table());
  pool().parallel_for(u.num_elements(), [&](std::size_t e) {
    for (std::uint32_t v = 0; v < problem_.num_vars(); ++v) {
      const std::uint32_t g = setup_.owner_of(v);
      const std::uint32_t col =
          setup_.layout(g).col_var(setup_.slot_of(v));
      if (resident) {
        auto& block = resolver(
            placement_.block_of(static_cast<mesh::ElementId>(e), g));
        block.store_column(col, u.at(e, v));
      } else {
        const std::uint32_t vb =
            placement_.block_of(static_cast<mesh::ElementId>(e), g);
        const auto src = residency_->backing_column(vb, col);
        const auto dst = u.at(e, v);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
  });
  if (resident) {
    costs_.hbm += chip_->hbm().transfer_cost(
        element_state_bytes(problem_.kind, problem_.n1d) *
        mesh_.num_elements());
  }
  return u;
}

std::vector<float> PimSimulation::checkpoint() {
  trace::Span span("pim.checkpoint");
  const auto nodes = static_cast<std::size_t>(setup_.ref().num_nodes());
  std::vector<float> out(static_cast<std::size_t>(mesh_.num_elements()) *
                         problem_.num_vars() * 2 * nodes);
  const bool resident = residency_->is_resident();
  const BlockResolver resolver(*chip_, residency_->table());
  pool().parallel_for(mesh_.num_elements(), [&](std::size_t e) {
    for (std::uint32_t v = 0; v < problem_.num_vars(); ++v) {
      const std::uint32_t g = setup_.owner_of(v);
      const auto& layout = setup_.layout(g);
      const std::uint32_t slot = setup_.slot_of(v);
      float* base = out.data() + (e * problem_.num_vars() + v) * 2 * nodes;
      const std::span<float> var(base, nodes);
      const std::span<float> aux(base + nodes, nodes);
      if (resident) {
        auto& block = resolver(
            placement_.block_of(static_cast<mesh::ElementId>(e), g));
        block.store_column(layout.col_var(slot), var);
        block.store_column(layout.col_aux(slot), aux);
      } else {
        const std::uint32_t vb =
            placement_.block_of(static_cast<mesh::ElementId>(e), g);
        const auto v_src = residency_->backing_column(vb, layout.col_var(slot));
        std::copy(v_src.begin(), v_src.end(), var.begin());
        const auto a_src = residency_->backing_column(vb, layout.col_aux(slot));
        std::copy(a_src.begin(), a_src.end(), aux.begin());
      }
    }
  });
  return out;
}

void PimSimulation::restore_checkpoint(std::span<const float> state) {
  trace::Span span("pim.restore");
  const auto nodes = static_cast<std::size_t>(setup_.ref().num_nodes());
  WAVEPIM_REQUIRE(state.size() ==
                      static_cast<std::size_t>(mesh_.num_elements()) *
                          problem_.num_vars() * 2 * nodes,
                  "checkpoint shape does not match the problem");
  const bool resident = residency_->is_resident();
  const BlockResolver resolver(*chip_, residency_->table());
  pool().parallel_for(mesh_.num_elements(), [&](std::size_t e) {
    for (std::uint32_t v = 0; v < problem_.num_vars(); ++v) {
      const std::uint32_t g = setup_.owner_of(v);
      const auto& layout = setup_.layout(g);
      const std::uint32_t slot = setup_.slot_of(v);
      const float* base =
          state.data() + (e * problem_.num_vars() + v) * 2 * nodes;
      const std::span<const float> var(base, nodes);
      const std::span<const float> aux(base + nodes, nodes);
      if (resident) {
        auto& block = resolver(
            placement_.block_of(static_cast<mesh::ElementId>(e), g));
        block.load_column(layout.col_var(slot), var);
        block.load_column(layout.col_aux(slot), aux);
      } else {
        const std::uint32_t vb =
            placement_.block_of(static_cast<mesh::ElementId>(e), g);
        const auto v_dst = residency_->backing_column(vb, layout.col_var(slot));
        std::copy(var.begin(), var.end(), v_dst.begin());
        const auto a_dst = residency_->backing_column(vb, layout.col_aux(slot));
        std::copy(aux.begin(), aux.end(), a_dst.begin());
      }
    }
  });
}

void PimSimulation::emit_range(
    std::span<const mesh::ElementId> elements,
    const std::function<void(mesh::ElementId, FunctionalSink&)>& emit,
    std::vector<std::vector<pim::Transfer>>& stash, bool defer_charges) {
  // Per-element stashes keep the merged transfer list (and the deferred
  // charge records) in element order no matter which worker ran what.
  // The stash vectors are members recycled across steps and stages —
  // adopting them into the sink clears contents but keeps capacity.
  stash.resize(mesh_.num_elements());
  if (defer_charges) {
    charge_stash_.resize(mesh_.num_elements());
  }
  const BlockResolver resolver(*chip_, residency_->table());
  pool().parallel_for(elements.size(), [&](std::size_t i) {
    const mesh::ElementId element = elements[i];
    FunctionalSink sink(resolver, mesh_, placement_, pricing_);
    sink.adopt_transfers(std::move(stash[element]));
    sink.defer_remote_charges(defer_charges);
    if (defer_charges) {
      // Keep earlier face groups' charges: an element's deferred reads
      // accumulate across the compute steps of one stage.
      sink.adopt_remote_charges(std::move(charge_stash_[element]),
                                /*clear=*/false);
    }
    sink.bind(element);
    emit(element, sink);
    stash[element] = sink.take_transfers();
    if (defer_charges) {
      charge_stash_[element] = sink.take_remote_charges();
    }
  });
}

void PimSimulation::fold_ledgers(std::span<const mesh::ElementId> elements,
                                 std::vector<pim::OpCost>& acc) {
  // A step only ever charges the ranged elements' own blocks (neighbour
  // reads are deferred), so folding this range drains every ledger the
  // step touched — before a later Store can recycle the physical slots.
  const std::uint32_t bpe = placement_.blocks_per_element();
  pim::Block* const* table = residency_->table();
  for (const mesh::ElementId e : elements) {
    for (std::uint32_t g = 0; g < bpe; ++g) {
      const std::uint32_t vb = e * bpe + g;
      pim::Block& block = *table[vb];
      acc[vb] += block.consumed();
      block.reset_cost();
    }
  }
}

void PimSimulation::settle_charges(bool compiled) {
  // Six sequential pairing groups; within each, pairings touch disjoint
  // element pairs, so they settle concurrently, and every accumulator
  // receives its charges in a fixed (group, face, emission) order.
  trace::Span span("pim.settle");
  for (std::size_t group = 0; group < face_pairings_.size(); ++group) {
    const auto& pairing = face_pairings_[group];
    const auto axis = static_cast<mesh::Axis>(group / 2);
    const mesh::Face plus = mesh::make_face(axis, +1);
    const mesh::Face minus = mesh::make_face(axis, -1);
    pool().parallel_for(pairing.size(), [&](std::size_t i) {
      const mesh::ElementId e = pairing[i];
      const mesh::ElementId nbr = *mesh_.neighbor(e, plus);
      // This element's pull across +axis owes reads to `nbr`'s blocks;
      // the partner's pull back across -axis owes reads to ours. The
      // charges land in the flux accumulators (not the block ledgers):
      // a batched window may already have evicted the physical blocks.
      if (compiled) {
        plan_->settle_pull(flux_acc_.data(), e, plus);
        plan_->settle_pull(flux_acc_.data(), nbr, minus);
      } else {
        for (const auto& c : charge_stash_[e][mesh::index_of(plus)]) {
          flux_acc_[c.block] += pricing_.rows_read(c.words);
        }
        for (const auto& c : charge_stash_[nbr][mesh::index_of(minus)]) {
          flux_acc_[c.block] += pricing_.rows_read(c.words);
        }
      }
    });
  }
}

void PimSimulation::drain_accumulators(std::vector<pim::OpCost>& acc,
                                       pim::OpCost& into) {
  trace::Span span("pim.drain_phase");
  // Ascending virtual-id order fixes the energy reduction order, exactly
  // like Chip::drain_phase fixes it over physical ids.
  Seconds busiest{};
  Joules energy{};
  for (auto& cost : acc) {
    busiest = std::max(busiest, cost.time);
    energy += cost.energy;
    cost = {};
  }
  into += {busiest, energy};
}

void PimSimulation::drain_network(const std::vector<pim::Transfer>& transfers) {
  trace::Span span("pim.drain_network", static_cast<double>(transfers.size()));
  const auto result = net_->schedule(transfers);
  costs_.network += {result.makespan, result.energy};
  net_stats_.schedules += 1;
  net_stats_.transfers += transfers.size();
  for (const auto& t : transfers) {
    net_stats_.words += t.words;
  }
  net_stats_.serial_sum += result.serial_sum;
  if (result.has_link_stats) {
    net_stats_.link_schedules += 1;
    net_stats_.stall_time += result.links.stall_time;
    net_stats_.max_utilization =
        std::max(net_stats_.max_utilization, result.links.max_utilization);
    net_stats_.peak_queue =
        std::max<std::uint64_t>(net_stats_.peak_queue, result.links.peak_queue);
  }
}

void PimSimulation::drain_network_cached(
    CachedNetDrain& cached, const std::vector<pim::Transfer>& transfers) {
  trace::Span span("pim.drain_network", static_cast<double>(transfers.size()));
  if (!cached.valid) {
    const auto result = net_->schedule(transfers);
    cached.cost = {result.makespan, result.energy};
    cached.transfers = transfers.size();
    cached.words = 0;
    for (const auto& t : transfers) {
      cached.words += t.words;
    }
    cached.serial_sum = result.serial_sum;
    cached.has_link_stats = result.has_link_stats;
    cached.links = result.links;
    cached.valid = true;
  }
  costs_.network += cached.cost;
  net_stats_.schedules += 1;
  net_stats_.transfers += cached.transfers;
  net_stats_.words += cached.words;
  net_stats_.serial_sum += cached.serial_sum;
  if (cached.has_link_stats) {
    net_stats_.link_schedules += 1;
    net_stats_.stall_time += cached.links.stall_time;
    net_stats_.max_utilization =
        std::max(net_stats_.max_utilization, cached.links.max_utilization);
    net_stats_.peak_queue =
        std::max<std::uint64_t>(net_stats_.peak_queue, cached.links.peak_queue);
  }
}

void PimSimulation::step(double dt) {
  WAVEPIM_REQUIRE(dt > 0.0, "time step must be positive");
  trace::Span span("pim.step");
  switch (exec_path_) {
    case ExecPath::Emit:
      break;
    case ExecPath::Replay:
      ensure_cache();
      break;
    case ExecPath::Compiled:
      ensure_plan();
      break;
    case ExecPath::Word:
      ensure_word_plan();
      break;
  }
  run_schedule(dt);
}

void PimSimulation::witness_snapshot(std::span<const mesh::ElementId> elems) {
  constexpr std::size_t kBlockWords =
      std::size_t{pim::Block::kRows} * pim::Block::kWords;
  const std::uint32_t bpe = placement_.blocks_per_element();
  witness_snapshot_.resize(elems.size() * bpe * kBlockWords);
  pim::Block* const* table = residency_->table();
  pool().parallel_for(elems.size(), [&](std::size_t i) {
    for (std::uint32_t g = 0; g < bpe; ++g) {
      const auto src =
          table[static_cast<std::size_t>(elems[i]) * bpe + g]->words();
      std::copy(src.begin(), src.end(),
                witness_snapshot_.begin() +
                    static_cast<std::ptrdiff_t>((i * bpe + g) * kBlockWords));
    }
  });
}

void PimSimulation::witness_verify(
    std::span<const mesh::ElementId> elems, int stage,
    std::uint32_t step_idx,
    const std::function<void(const BlockResolver&, mesh::ElementId)>&
        run_shadow) {
  constexpr std::size_t kBlockWords =
      std::size_t{pim::Block::kRows} * pim::Block::kWords;
  const std::uint32_t bpe = placement_.blocks_per_element();
  pim::Block* const* table = residency_->table();
  if (witness_corruption_) {
    // The injected fault (tests): flip the sign bit of one live word
    // after the word kernels ran, so a functioning witness must flag
    // exactly this block.
    auto words = table[witness_corruption_->vblock]->words();
    float& w = words[witness_corruption_->col * pim::Block::kRows +
                     witness_corruption_->row];
    w = std::bit_cast<float>(std::bit_cast<std::uint32_t>(w) ^ 0x80000000u);
    witness_corruption_.reset();
  }
  trace::Span span("pim.witness", static_cast<double>(elems.size()));
  witness_bad_.assign(elems.size() * bpe, 0);
  const std::size_t table_entries =
      static_cast<std::size_t>(mesh_.num_elements()) * bpe;
  pool().parallel_for(elems.size(), [&](std::size_t i) {
    // Per-worker shadow pool and virtual-table copy, capacity-retaining
    // across checks. The element's ids are remapped onto the shadow
    // blocks (seeded from the snapshot); every other id resolves to the
    // live block — safe for flux, which only reads neighbour variable
    // columns, and those are not written before Integration.
    thread_local std::vector<pim::Block> shadow_blocks;
    thread_local std::vector<pim::Block*> shadow_table;
    if (shadow_blocks.size() < bpe ||
        &shadow_blocks.front().model() != &chip_->arith()) {
      shadow_blocks.clear();
      shadow_blocks.reserve(bpe);
      for (std::uint32_t g = 0; g < bpe; ++g) {
        shadow_blocks.emplace_back(&chip_->arith());
      }
    }
    const std::size_t e = elems[i];
    for (std::uint32_t g = 0; g < bpe; ++g) {
      const float* src =
          witness_snapshot_.data() + (i * bpe + g) * kBlockWords;
      const auto dst = shadow_blocks[g].words();
      std::copy(src, src + kBlockWords, dst.begin());
      shadow_blocks[g].reset_cost();  // shadow ledgers are discarded
    }
    shadow_table.assign(table, table + table_entries);
    for (std::uint32_t g = 0; g < bpe; ++g) {
      shadow_table[e * bpe + g] = &shadow_blocks[g];
    }
    const BlockResolver shadow(*chip_, shadow_table.data());
    run_shadow(shadow, static_cast<mesh::ElementId>(e));
    for (std::uint32_t g = 0; g < bpe; ++g) {
      witness_bad_[i * bpe + g] =
          fnv1a_words(shadow_blocks[g].words()) !=
          fnv1a_words(table[e * bpe + g]->words());
    }
  });
  witness_stats_.checks += 1;
  witness_stats_.blocks_checked += elems.size() * bpe;
  for (std::size_t i = 0; i < elems.size(); ++i) {
    for (std::uint32_t g = 0; g < bpe; ++g) {
      if (witness_bad_[i * bpe + g] != 0) {
        const std::uint32_t vblock =
            static_cast<std::uint32_t>(elems[i]) * bpe + g;
        witness_stats_.mismatches += 1;
        witness_mismatches_.push_back({stage, step_idx, vblock});
        trace::instant("pim.witness.mismatch", static_cast<double>(vblock));
      }
    }
  }
}

template <typename RunWord, typename RunShadow>
void PimSimulation::run_word_phase(std::span<const mesh::ElementId> elems,
                                   int stage, std::uint32_t step_idx,
                                   RunWord&& run_word,
                                   RunShadow&& run_shadow) {
  // Cadence: phase applications are counted across stages and steps;
  // every witness_interval_-th one (starting with the first) is checked.
  const bool check = witness_interval_ != 0 &&
                     (witness_counter_++ % witness_interval_) == 0;
  if (check) {
    witness_snapshot(elems);
  }
  const std::size_t chunks =
      (elems.size() + WordPlan::kChunk - 1) / WordPlan::kChunk;
  pool().parallel_for(chunks, [&](std::size_t c) {
    const std::size_t first = c * WordPlan::kChunk;
    run_word(elems.subspan(first,
                           std::min(WordPlan::kChunk, elems.size() - first)));
  });
  if (check) {
    witness_verify(elems, stage, step_idx, run_shadow);
  }
}

void PimSimulation::run_schedule(double dt) {
  const bool compiled = exec_path_ == ExecPath::Compiled;
  const bool word = exec_path_ == ExecPath::Word;
  // Both plan-backed tiers share the compiled infrastructure: batched
  // cost aggregates, deferred-charge settlement through the plan, and
  // the once-scheduled network drains.
  const bool planned = compiled || word;
  const bool cached = exec_path_ == ExecPath::Replay;
  const BlockResolver resolver(*chip_, residency_->table());
  const BatchSchedule& schedule = residency_->schedule();
  const auto& order = residency_->elements_in_slice_order();
  const std::uint32_t eps = residency_->elements_per_slice();

  const auto slice_elements = [&](std::uint32_t first, std::uint32_t last) {
    return std::span<const mesh::ElementId>(
        order.data() + static_cast<std::size_t>(first) * eps,
        static_cast<std::size_t>(last - first + 1) * eps);
  };

  for (int stage = 0; stage < dg::Lsrk54::kNumStages; ++stage) {
    trace::Span stage_span("pim.rk_stage", static_cast<double>(stage));
    // Lazy lowering of the stage's Integration stream happens before the
    // fan-outs (replaying / running it is const and worker-safe).
    const ProgramCache::IntegrationProgram* integ_prog =
        cached ? &cache_->integration(stage, static_cast<float>(dt))
               : nullptr;
    const ExecutionPlan::StreamPlan* integ_plan =
        planned ? &plan_->integration(stage, static_cast<float>(dt))
                : nullptr;
    const WordPlan::WordStream* integ_word =
        word ? &word_plan_->integration(stage, static_cast<float>(dt))
             : nullptr;

    if (!planned) {
      // An element's deferred neighbour-side charges accumulate across
      // the stage's compute steps; start the stage clean.
      charge_stash_.resize(mesh_.num_elements());
      for (auto& charges : charge_stash_) {
        for (auto& list : charges) {
          list.clear();
        }
      }
    }

    for (std::uint32_t idx = 0;
         idx < static_cast<std::uint32_t>(schedule.steps.size()); ++idx) {
      const BatchStep& bstep = schedule.steps[idx];
      switch (bstep.kind) {
        case BatchStep::Kind::LoadSlices: {
          trace::Span load_span(
              "batch.load",
              static_cast<double>(bstep.last_slice - bstep.first_slice + 1));
          residency_->load_slices(bstep.first_slice, bstep.last_slice);
          // Volume runs at a slice's first residency of the stage (the
          // periodic staging slice's reload is not a first load).
          std::uint32_t vf = bstep.first_slice;
          while (vf <= bstep.last_slice && first_load_step_[vf] != idx) {
            ++vf;
          }
          std::uint32_t vl = bstep.last_slice;
          while (vl > vf && first_load_step_[vl] != idx) {
            --vl;
          }
          if (vf <= bstep.last_slice) {
            trace::Span phase_span("pim.volume");
            const auto elems = slice_elements(vf, vl);
            if (word) {
              run_word_phase(
                  elems, stage, idx,
                  [&](std::span<const mesh::ElementId> chunk) {
                    word_plan_->run_volume(resolver, chunk);
                  },
                  [&](const BlockResolver& shadow, mesh::ElementId e) {
                    plan_->run_volume(shadow, e);
                  });
            } else if (compiled) {
              pool().parallel_for(elems.size(), [&](std::size_t i) {
                plan_->run_volume(resolver, elems[i]);
              });
            } else {
              emit_range(
                  elems,
                  [this, cached](mesh::ElementId e, FunctionalSink& sink) {
                    if (cached) {
                      replay(cache_->arena(),
                             cache_->volume(cache_->class_of(e)), sink);
                    } else {
                      emit_volume(setup_, sink, volume_override(e));
                    }
                  },
                  transfer_stash_, /*defer_charges=*/false);
            }
            fold_ledgers(elems, volume_acc_);
          }
          break;
        }
        case BatchStep::Kind::ComputeYMinus:
        case BatchStep::Kind::ComputeX:
        case BatchStep::Kind::ComputeZ:
        case BatchStep::Kind::ComputeYPlus: {
          const FaceGroup group = group_of(bstep.kind);
          trace::Span phase_span("pim.flux");
          const auto elems = slice_elements(bstep.first_slice, bstep.last_slice);
          if (word) {
            run_word_phase(
                elems, stage, idx,
                [&](std::span<const mesh::ElementId> chunk) {
                  word_plan_->run_flux_group(resolver, chunk, group);
                },
                [&](const BlockResolver& shadow, mesh::ElementId e) {
                  plan_->run_flux_group(shadow, e, group);
                });
          } else if (compiled) {
            pool().parallel_for(elems.size(), [&](std::size_t i) {
              plan_->run_flux_group(resolver, elems[i], group);
            });
          } else {
            emit_range(
                elems,
                [this, cached, group](mesh::ElementId e,
                                      FunctionalSink& sink) {
                  if (cached) {
                    const std::uint32_t cls = cache_->class_of(e);
                    for (mesh::Face f : faces_of(group)) {
                      replay(cache_->arena(), cache_->flux(cls, f), sink);
                    }
                  } else {
                    for (mesh::Face f : faces_of(group)) {
                      const bool boundary =
                          !mesh_.neighbor(e, f).has_value();
                      emit_flux_face(setup_, f, boundary, sink,
                                     flux_override(e, f));
                    }
                  }
                },
                flux_stash_[static_cast<std::size_t>(group)],
                /*defer_charges=*/true);
          }
          fold_ledgers(elems, flux_acc_);
          break;
        }
        case BatchStep::Kind::StoreSlices: {
          trace::Span store_span(
              "batch.store",
              static_cast<double>(bstep.last_slice - bstep.first_slice + 1));
          // Integration runs just before a slice leaves the chip for
          // good (the periodic staging slice's first store keeps its
          // state un-integrated for the wrap pairing, like Fig. 7).
          std::uint32_t vf = bstep.first_slice;
          while (vf <= bstep.last_slice && last_store_step_[vf] != idx) {
            ++vf;
          }
          std::uint32_t vl = bstep.last_slice;
          while (vl > vf && last_store_step_[vl] != idx) {
            --vl;
          }
          if (vf <= bstep.last_slice) {
            trace::Span phase_span("pim.integration");
            const auto elems = slice_elements(vf, vl);
            if (word) {
              run_word_phase(
                  elems, stage, idx,
                  [&](std::span<const mesh::ElementId> chunk) {
                    word_plan_->run_integration(resolver, chunk, *integ_word);
                  },
                  [&](const BlockResolver& shadow, mesh::ElementId e) {
                    plan_->run_integration(shadow, e, *integ_plan);
                  });
            } else if (compiled) {
              pool().parallel_for(elems.size(), [&](std::size_t i) {
                plan_->run_integration(resolver, elems[i], *integ_plan);
              });
            } else {
              emit_range(
                  elems,
                  [this, cached, integ_prog, stage, dt](
                      mesh::ElementId, FunctionalSink& sink) {
                    if (cached) {
                      replay(integ_prog->arena, integ_prog->stream, sink);
                    } else {
                      emit_integration_stage(setup_, stage,
                                             static_cast<float>(dt), sink);
                    }
                  },
                  integ_stash_, /*defer_charges=*/false);
            }
            fold_ledgers(elems, integ_acc_);
          }
          residency_->store_slices(bstep.first_slice, bstep.last_slice);
          break;
        }
      }
    }

    // Flux phase B: the deferred neighbour-side read charges, settled
    // over the disjoint pairings after every face group has run.
    settle_charges(planned);

    // Phase drains, in the fixed volume -> flux -> integration order.
    drain_accumulators(volume_acc_, costs_.volume);
    if (planned) {
      drain_network_cached(volume_net_, plan_->volume_transfers());
    } else {
      merged_transfers_.clear();
      for (const auto& list : transfer_stash_) {
        merged_transfers_.insert(merged_transfers_.end(), list.begin(),
                                 list.end());
      }
      drain_network(merged_transfers_);
    }
    drain_accumulators(flux_acc_, costs_.flux);
    if (planned) {
      drain_network_cached(flux_net_, plan_->flux_transfers());
    } else {
      // Element-ascending, each element's groups in its canonical
      // application order — the exact emission order of the schedule,
      // and the order the compiled plan pre-merges.
      merged_transfers_.clear();
      for (mesh::ElementId e = 0; e < mesh_.num_elements(); ++e) {
        for (const FaceGroup g :
             canonical_group_order(y_minus_deferred(mesh_, e))) {
          const auto& list = flux_stash_[static_cast<std::size_t>(g)][e];
          merged_transfers_.insert(merged_transfers_.end(), list.begin(),
                                   list.end());
        }
      }
      drain_network(merged_transfers_);
    }
    drain_accumulators(integ_acc_, costs_.integration);

    // Staging traffic of this stage pass (zero when fully resident).
    costs_.hbm += residency_->drain_hbm_cost();
  }
}

}  // namespace wavepim::mapping
