#pragma once

#include <array>
#include <vector>

#include "mapping/element_program.h"
#include "mesh/structured_mesh.h"
#include "pim/chip.h"

namespace wavepim::mapping {

/// Shared pricing of the operations the sinks account identically; both
/// sinks call these helpers so functional and analytic costs cannot drift.
struct SinkPricing {
  const pim::ArithModel* model = nullptr;
  /// Cost of fetching one LUT constant (Algorithm 1: index read, content
  /// read, destination write plus the interconnect hop), computed once by
  /// the compiler from the chip's interconnect.
  pim::OpCost lut_unit{};

  [[nodiscard]] pim::OpCost rows_read(std::size_t n) const;
  [[nodiscard]] pim::OpCost rows_written(std::size_t n) const;
};

/// Maps elements of one batch onto chip blocks: element-major, group-minor
/// (element e occupies blocks [e*bpe, (e+1)*bpe)), so the blocks of one
/// element sit under the same (or adjacent) H-tree switch — the layout
/// rationale of §4.2.1.
class Placement {
 public:
  Placement(std::uint32_t blocks_per_element, std::uint64_t batch_base = 0)
      : bpe_(blocks_per_element), base_(batch_base) {}

  [[nodiscard]] std::uint32_t blocks_per_element() const { return bpe_; }

  /// Global block id of (element-local index, group).
  [[nodiscard]] std::uint32_t block_of(std::uint64_t local_element,
                                       std::uint32_t group) const {
    return static_cast<std::uint32_t>((base_ + local_element) * bpe_ + group);
  }

 private:
  std::uint32_t bpe_;
  std::uint64_t base_;
};

/// Resolves block ids to physical blocks. By default ids address the
/// chip directly (the fully-resident numbering); with a residency table
/// the ids are *virtual* and indirect through it, so the same emitted
/// programs run unchanged whether an element's blocks are pinned or
/// cycled through a slice window (mapping/residency.h).
class BlockResolver {
 public:
  /*implicit*/ BlockResolver(pim::Chip& chip) : chip_(&chip) {}
  BlockResolver(pim::Chip& chip, pim::Block* const* table)
      : chip_(&chip), table_(table) {}

  [[nodiscard]] pim::Block& operator()(std::uint32_t id) const {
    return table_ != nullptr ? *table_[id] : chip_->block(id);
  }
  [[nodiscard]] pim::Chip& chip() const { return *chip_; }

 private:
  pim::Chip* chip_;
  pim::Block* const* table_ = nullptr;
};

/// Executes the emitted program bit-true on a Chip's crossbar blocks and
/// collects the inter-block transfers of the phase for interconnect
/// scheduling. Bind the current element (and thereby its neighbours via
/// the mesh) before emitting.
class FunctionalSink : public ProgramSink {
 public:
  FunctionalSink(BlockResolver resolver, const mesh::StructuredMesh& mesh,
                 Placement placement, SinkPricing pricing);

  /// Sets the element whose program is being emitted.
  void bind(mesh::ElementId element);

  [[nodiscard]] const std::vector<pim::Transfer>& transfers() const {
    return transfers_;
  }
  void clear_transfers() { transfers_.clear(); }
  /// Moves the collected transfers out (parallel executors stash them per
  /// element and concatenate in element order).
  [[nodiscard]] std::vector<pim::Transfer> take_transfers() {
    return std::move(transfers_);
  }

  /// Hands the sink a recycled buffer to collect transfers into: contents
  /// are discarded, capacity is kept. Paired with take_transfers, this
  /// lets the simulation's per-element stashes survive across phases and
  /// stages without reallocating.
  void adopt_transfers(std::vector<pim::Transfer>&& buffer) {
    transfers_ = std::move(buffer);
    transfers_.clear();
  }

  /// A source-block read cost an `inter_transfer` owes to the *neighbour*
  /// element's block. In deferred mode these are recorded instead of
  /// charged, so concurrent per-element emission never writes another
  /// element's ledger; the caller settles them afterwards over a
  /// conflict-free face pairing (PimSimulation's flux phase B).
  struct DeferredCharge {
    std::uint32_t block;  ///< global id of the neighbour's source block
    std::uint32_t words;  ///< rows read out of it
  };

  /// Enables deferral of neighbour-side charges. Data still moves
  /// immediately — flux only *reads* neighbour variable columns, which no
  /// element writes during the phase, so the words themselves are safe.
  void defer_remote_charges(bool enable) { defer_remote_ = enable; }

  /// Deferred charges of the bound element's pulls, keyed by the face they
  /// crossed, in emission order.
  [[nodiscard]] std::array<std::vector<DeferredCharge>, 6>
  take_remote_charges() {
    return std::move(remote_charges_);
  }

  /// Recycled-buffer counterpart of adopt_transfers for the deferred
  /// charge lists. With `clear` false the buffer's contents are kept:
  /// the schedule-driven executor emits one face group at a time and
  /// accumulates an element's charges across the groups of a stage.
  void adopt_remote_charges(std::array<std::vector<DeferredCharge>, 6>&& buffer,
                            bool clear = true) {
    remote_charges_ = std::move(buffer);
    if (clear) {
      for (auto& list : remote_charges_) {
        list.clear();
      }
    }
  }

  [[nodiscard]] pim::Block& block_of(mesh::ElementId element,
                                     std::uint32_t group);

  void scatter(std::uint32_t group, std::span<const std::uint32_t> rows,
               std::uint32_t col, std::span<const float> values,
               std::uint32_t distinct_values) override;
  void gather(std::uint32_t group, std::span<const std::uint32_t> src_rows,
              std::uint32_t src_col, std::uint32_t dst_col) override;
  void arith(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
             std::uint32_t col_b, std::uint32_t col_dst,
             std::uint32_t rows) override;
  void fscale(std::uint32_t group, std::uint32_t col_src,
              std::uint32_t col_dst, float imm, std::uint32_t rows) override;
  void faxpy(std::uint32_t group, std::uint32_t col_dst,
             std::uint32_t col_src, float a, float c,
             std::uint32_t rows) override;
  void arith_rows(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
                  std::uint32_t col_b, std::uint32_t col_dst,
                  std::span<const std::uint32_t> rows) override;
  void fscale_rows(std::uint32_t group, std::uint32_t col_src,
                   std::uint32_t col_dst, float imm,
                   std::span<const std::uint32_t> rows) override;
  void intra_transfer(std::uint32_t src_group, std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override;
  void inter_transfer(mesh::Face face, std::uint32_t src_group,
                      std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override;
  void lut_fetch(std::uint32_t group, std::uint32_t count) override;

 private:
  void move_rows(pim::Block& src, std::uint32_t src_col,
                 std::span<const std::uint32_t> src_rows, pim::Block& dst,
                 std::uint32_t dst_col,
                 std::span<const std::uint32_t> dst_rows);

  BlockResolver resolver_;
  const mesh::StructuredMesh& mesh_;
  Placement placement_;
  SinkPricing pricing_;
  mesh::ElementId element_ = 0;
  bool defer_remote_ = false;
  std::vector<pim::Transfer> transfers_;
  std::array<std::vector<DeferredCharge>, 6> remote_charges_;
};

/// Tallies per-group block costs and transfer descriptors for one
/// *representative* element — because every element executes the identical
/// instruction stream, one element's group timeline is the per-phase block
/// time, and energies scale by the element count.
class CostSink : public ProgramSink {
 public:
  explicit CostSink(SinkPricing pricing, std::uint32_t num_groups);

  /// Transfer between two blocks of the same element.
  struct IntraDescriptor {
    std::uint32_t src_group;
    std::uint32_t dst_group;
    std::uint32_t words;
  };
  /// Transfer from a face-neighbour element's block.
  struct InterDescriptor {
    mesh::Face face;
    std::uint32_t src_group;
    std::uint32_t dst_group;
    std::uint32_t words;
  };

  [[nodiscard]] const pim::OpCost& group_cost(std::uint32_t g) const {
    return groups_[g];
  }
  /// Longest per-block serial time — the phase's compute critical path.
  [[nodiscard]] Seconds max_group_time() const;
  /// Energy of one element's blocks for the phase.
  [[nodiscard]] Joules element_energy() const;
  [[nodiscard]] const std::vector<IntraDescriptor>& intra() const {
    return intra_;
  }
  [[nodiscard]] const std::vector<InterDescriptor>& inter() const {
    return inter_;
  }
  /// Total LUT constants fetched (host pre-processing demand).
  [[nodiscard]] std::uint64_t lut_fetches() const { return lut_fetches_; }

  void scatter(std::uint32_t group, std::span<const std::uint32_t> rows,
               std::uint32_t col, std::span<const float> values,
               std::uint32_t distinct_values) override;
  void gather(std::uint32_t group, std::span<const std::uint32_t> src_rows,
              std::uint32_t src_col, std::uint32_t dst_col) override;
  void arith(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
             std::uint32_t col_b, std::uint32_t col_dst,
             std::uint32_t rows) override;
  void fscale(std::uint32_t group, std::uint32_t col_src,
              std::uint32_t col_dst, float imm, std::uint32_t rows) override;
  void faxpy(std::uint32_t group, std::uint32_t col_dst,
             std::uint32_t col_src, float a, float c,
             std::uint32_t rows) override;
  void arith_rows(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
                  std::uint32_t col_b, std::uint32_t col_dst,
                  std::span<const std::uint32_t> rows) override;
  void fscale_rows(std::uint32_t group, std::uint32_t col_src,
                   std::uint32_t col_dst, float imm,
                   std::span<const std::uint32_t> rows) override;
  void intra_transfer(std::uint32_t src_group, std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override;
  void inter_transfer(mesh::Face face, std::uint32_t src_group,
                      std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override;
  void lut_fetch(std::uint32_t group, std::uint32_t count) override;

 private:
  SinkPricing pricing_;
  std::vector<pim::OpCost> groups_;
  std::vector<IntraDescriptor> intra_;
  std::vector<InterDescriptor> inter_;
  std::uint64_t lut_fetches_ = 0;
};

}  // namespace wavepim::mapping
