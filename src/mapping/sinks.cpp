#include "mapping/sinks.h"

#include <algorithm>

#include "common/error.h"

namespace wavepim::mapping {

pim::OpCost SinkPricing::rows_read(std::size_t n) const {
  const auto& b = model->basic();
  return {b.t_row_read() * static_cast<double>(n),
          b.e_row_access() * static_cast<double>(n)};
}

pim::OpCost SinkPricing::rows_written(std::size_t n) const {
  const auto& b = model->basic();
  return {b.t_row_write() * static_cast<double>(n),
          b.e_row_access() * static_cast<double>(n)};
}

// ---------------------------------------------------------------------------
// FunctionalSink
// ---------------------------------------------------------------------------

FunctionalSink::FunctionalSink(BlockResolver resolver,
                               const mesh::StructuredMesh& mesh,
                               Placement placement, SinkPricing pricing)
    : resolver_(resolver), mesh_(mesh), placement_(placement),
      pricing_(pricing) {
  WAVEPIM_REQUIRE(pricing.model != nullptr, "sink needs an arith model");
}

void FunctionalSink::bind(mesh::ElementId element) { element_ = element; }

pim::Block& FunctionalSink::block_of(mesh::ElementId element,
                                     std::uint32_t group) {
  return resolver_(placement_.block_of(element, group));
}

void FunctionalSink::scatter(std::uint32_t group,
                             std::span<const std::uint32_t> rows,
                             std::uint32_t col,
                             std::span<const float> values,
                             std::uint32_t distinct_values) {
  block_of(element_, group).scatter_rows(rows, col, values, distinct_values);
}

void FunctionalSink::gather(std::uint32_t group,
                            std::span<const std::uint32_t> src_rows,
                            std::uint32_t src_col, std::uint32_t dst_col) {
  block_of(element_, group).gather_rows(src_rows, src_col, 0, dst_col);
}

void FunctionalSink::arith(std::uint32_t group, pim::Opcode op,
                           std::uint32_t col_a, std::uint32_t col_b,
                           std::uint32_t col_dst, std::uint32_t rows) {
  block_of(element_, group).arith(op, col_a, col_b, col_dst, 0, rows);
}

void FunctionalSink::fscale(std::uint32_t group, std::uint32_t col_src,
                            std::uint32_t col_dst, float imm,
                            std::uint32_t rows) {
  block_of(element_, group).fscale(col_src, col_dst, imm, 0, rows);
}

void FunctionalSink::faxpy(std::uint32_t group, std::uint32_t col_dst,
                           std::uint32_t col_src, float a, float c,
                           std::uint32_t rows) {
  block_of(element_, group).faxpy(col_dst, col_src, a, c, 0, rows);
}

void FunctionalSink::arith_rows(std::uint32_t group, pim::Opcode op,
                                std::uint32_t col_a, std::uint32_t col_b,
                                std::uint32_t col_dst,
                                std::span<const std::uint32_t> rows) {
  block_of(element_, group).arith_rows(op, col_a, col_b, col_dst, rows);
}

void FunctionalSink::fscale_rows(std::uint32_t group, std::uint32_t col_src,
                                 std::uint32_t col_dst, float imm,
                                 std::span<const std::uint32_t> rows) {
  block_of(element_, group).fscale_rows(col_src, col_dst, imm, rows);
}

void FunctionalSink::move_rows(pim::Block& src, std::uint32_t src_col,
                               std::span<const std::uint32_t> src_rows,
                               pim::Block& dst, std::uint32_t dst_col,
                               std::span<const std::uint32_t> dst_rows) {
  WAVEPIM_REQUIRE(src_rows.size() == dst_rows.size(),
                  "transfer row lists must match");
  for (std::size_t i = 0; i < src_rows.size(); ++i) {
    dst.set(dst_rows[i], dst_col, src.at(src_rows[i], src_col));
  }
  // Destination-side cost: serial row writes (the I_4 instructions of
  // §4.2.1). The source-side reads are charged by the caller — immediately
  // for same-element moves, possibly deferred for neighbour pulls — and
  // the switch leg is priced when the collected transfers are scheduled on
  // the interconnect.
  dst.charge(pricing_.rows_written(dst_rows.size()));
}

void FunctionalSink::intra_transfer(std::uint32_t src_group,
                                    std::uint32_t src_col,
                                    std::span<const std::uint32_t> src_rows,
                                    std::uint32_t dst_group,
                                    std::uint32_t dst_col,
                                    std::span<const std::uint32_t> dst_rows) {
  pim::Block& src = block_of(element_, src_group);
  move_rows(src, src_col, src_rows, block_of(element_, dst_group), dst_col,
            dst_rows);
  src.charge(pricing_.rows_read(src_rows.size()));
  transfers_.push_back(
      {.src_block = placement_.block_of(element_, src_group),
       .dst_block = placement_.block_of(element_, dst_group),
       .words = static_cast<std::uint32_t>(src_rows.size())});
}

void FunctionalSink::inter_transfer(mesh::Face face, std::uint32_t src_group,
                                    std::uint32_t src_col,
                                    std::span<const std::uint32_t> src_rows,
                                    std::uint32_t dst_group,
                                    std::uint32_t dst_col,
                                    std::span<const std::uint32_t> dst_rows) {
  const auto neighbor = mesh_.neighbor(element_, face);
  WAVEPIM_REQUIRE(neighbor.has_value(),
                  "inter_transfer emitted for a boundary face");
  pim::Block& src = block_of(*neighbor, src_group);
  move_rows(src, src_col, src_rows, block_of(element_, dst_group), dst_col,
            dst_rows);
  const std::uint32_t src_block = placement_.block_of(*neighbor, src_group);
  const auto words = static_cast<std::uint32_t>(src_rows.size());
  if (defer_remote_) {
    remote_charges_[mesh::index_of(face)].push_back({src_block, words});
  } else {
    src.charge(pricing_.rows_read(words));
  }
  transfers_.push_back({.src_block = src_block,
                        .dst_block = placement_.block_of(element_, dst_group),
                        .words = words});
}

void FunctionalSink::lut_fetch(std::uint32_t group, std::uint32_t count) {
  // Immediates are already folded into the emitted constants; charge the
  // Algorithm-1 cost of materialising them from the LUT block.
  pim::OpCost total{};
  for (std::uint32_t i = 0; i < count; ++i) {
    total += pricing_.lut_unit;
  }
  block_of(element_, group).charge(total);
}

// ---------------------------------------------------------------------------
// CostSink
// ---------------------------------------------------------------------------

CostSink::CostSink(SinkPricing pricing, std::uint32_t num_groups)
    : pricing_(pricing), groups_(num_groups) {
  WAVEPIM_REQUIRE(pricing.model != nullptr, "sink needs an arith model");
}

Seconds CostSink::max_group_time() const {
  Seconds t(0.0);
  for (const auto& g : groups_) {
    t = std::max(t, g.time);
  }
  return t;
}

Joules CostSink::element_energy() const {
  Joules e(0.0);
  for (const auto& g : groups_) {
    e += g.energy;
  }
  return e;
}

void CostSink::scatter(std::uint32_t group,
                       std::span<const std::uint32_t> rows, std::uint32_t,
                       std::span<const float>, std::uint32_t distinct) {
  groups_[group] += pricing_.rows_read(distinct);
  groups_[group] += pricing_.rows_written(rows.size());
}

void CostSink::gather(std::uint32_t group,
                      std::span<const std::uint32_t> src_rows, std::uint32_t,
                      std::uint32_t) {
  groups_[group] += pricing_.rows_read(src_rows.size());
  groups_[group] += pricing_.rows_written(src_rows.size());
}

void CostSink::arith(std::uint32_t group, pim::Opcode op, std::uint32_t,
                     std::uint32_t, std::uint32_t, std::uint32_t rows) {
  groups_[group] += pricing_.model->op_cost(op, rows);
}

void CostSink::fscale(std::uint32_t group, std::uint32_t, std::uint32_t,
                      float, std::uint32_t rows) {
  groups_[group] += pricing_.model->op_cost(pim::Opcode::Fscale, rows);
}

void CostSink::faxpy(std::uint32_t group, std::uint32_t, std::uint32_t, float,
                     float, std::uint32_t rows) {
  groups_[group] += pricing_.model->op_cost(pim::Opcode::Faxpy, rows);
}

void CostSink::arith_rows(std::uint32_t group, pim::Opcode op, std::uint32_t,
                          std::uint32_t, std::uint32_t,
                          std::span<const std::uint32_t> rows) {
  groups_[group] += pricing_.model->op_cost(
      op, static_cast<std::uint32_t>(rows.size()));
}

void CostSink::fscale_rows(std::uint32_t group, std::uint32_t, std::uint32_t,
                           float, std::span<const std::uint32_t> rows) {
  groups_[group] += pricing_.model->op_cost(
      pim::Opcode::Fscale, static_cast<std::uint32_t>(rows.size()));
}

void CostSink::intra_transfer(std::uint32_t src_group, std::uint32_t,
                              std::span<const std::uint32_t> src_rows,
                              std::uint32_t dst_group, std::uint32_t,
                              std::span<const std::uint32_t>) {
  groups_[src_group] += pricing_.rows_read(src_rows.size());
  groups_[dst_group] += pricing_.rows_written(src_rows.size());
  intra_.push_back({src_group, dst_group,
                    static_cast<std::uint32_t>(src_rows.size())});
}

void CostSink::inter_transfer(mesh::Face face, std::uint32_t src_group,
                              std::uint32_t,
                              std::span<const std::uint32_t> src_rows,
                              std::uint32_t dst_group, std::uint32_t,
                              std::span<const std::uint32_t>) {
  // In steady state every block both sends its traces and receives its
  // neighbours'; the representative block is charged both sides.
  groups_[src_group] += pricing_.rows_read(src_rows.size());
  groups_[dst_group] += pricing_.rows_written(src_rows.size());
  inter_.push_back({face, src_group, dst_group,
                    static_cast<std::uint32_t>(src_rows.size())});
}

void CostSink::lut_fetch(std::uint32_t group, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    groups_[group] += pricing_.lut_unit;
  }
  lut_fetches_ += count;
}

}  // namespace wavepim::mapping
