#include "mapping/word_plan.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "pim/block.h"
#include "pim/word.h"
#include "trace/trace.h"

namespace wavepim::mapping {

namespace {

using Code = WordPlan::WordOp::Code;
using ExecOp = ExecutionPlan::Op;
using pim::word::RowPattern;

constexpr std::uint32_t kRows = pim::Block::kRows;

/// Longest ScaleAdd run a chain head may absorb (the flux programs
/// produce runs of 4; the cap only bounds the executor's stack arrays).
constexpr std::uint32_t kMaxChain = 16;

/// The engine is opt-out for testing: WAVEPIM_WORD_AVX2=0 pins the
/// generic kernels even on AVX2 hosts (the differential unit tests use
/// this to compare the two back-ends on the same machine).
bool avx_engine_enabled() {
  static const bool on = [] {
    const char* e = std::getenv("WAVEPIM_WORD_AVX2");
    if (e != nullptr && e[0] == '0' && e[1] == '\0') {
      return false;
    }
    return wordavx::supported();
  }();
  return on;
}

/// Peephole fusion gate, default on; read per WordPlan construction
/// (not a function-local static) so tests can flip it between builds.
bool fuse_env_enabled() {
  const char* e = std::getenv("WAVEPIM_WORD_FUSE");
  return e == nullptr || std::strcmp(e, "0") != 0;
}

/// Element-major sub-chunk size override (`WAVEPIM_WORD_BLOCK`); 0
/// disables the blocking loop.
std::uint32_t block_elems_env(std::uint32_t fallback) {
  const char* e = std::getenv("WAVEPIM_WORD_BLOCK");
  if (e == nullptr || *e == '\0') {
    return fallback;
  }
  return static_cast<std::uint32_t>(std::strtoul(e, nullptr, 10));
}

/// True when no row repeats — the precondition for interleaving two
/// fused ops' per-row bodies (see the fused-kernel comment in
/// pim/word.h). kRows-bit stack bitmap; plan-build time only.
bool rows_distinct(const std::uint32_t* rows, std::uint32_t n) {
  std::array<std::uint64_t, kRows / 64> seen{};
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    if (r >= kRows) {
      return false;
    }
    std::uint64_t& word = seen[r >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (r & 63U);
    if ((word & bit) != 0) {
      return false;
    }
    word |= bit;
  }
  return true;
}

Code arith_code(pim::Opcode opcode, RowPattern::Kind kind) {
  switch (opcode) {
    case pim::Opcode::Fadd:
      return kind == RowPattern::Kind::Contiguous ? Code::Add
             : kind == RowPattern::Kind::Strided  ? Code::AddStrided
                                                  : Code::AddIndexed;
    case pim::Opcode::Fsub:
      return kind == RowPattern::Kind::Contiguous ? Code::Sub
             : kind == RowPattern::Kind::Strided  ? Code::SubStrided
                                                  : Code::SubIndexed;
    case pim::Opcode::Fmul:
      return kind == RowPattern::Kind::Contiguous ? Code::Mul
             : kind == RowPattern::Kind::Strided  ? Code::MulStrided
                                                  : Code::MulIndexed;
    default:
      WAVEPIM_REQUIRE(false, "unsupported two-operand arith opcode");
  }
  return Code::Add;
}

}  // namespace

WordPlan::WordPlan(ExecutionPlan& plan)
    : plan_(plan), num_groups_(plan.num_groups()) {
  use_avx2_ = avx_engine_enabled();
  fuse_enabled_ = fuse_env_enabled();
  block_elems_ = block_elems_env(block_elems_);
  classes_.reserve(plan.num_classes());
  for (std::uint32_t cls = 0; cls < plan.num_classes(); ++cls) {
    ClassStreams cs;
    cs.volume = compile(plan.volume_plan(cls));
    for (std::uint32_t g = 0; g < kNumFaceGroups; ++g) {
      cs.flux[g] = compile(plan.flux_plan(cls, static_cast<FaceGroup>(g)));
    }
    classes_.push_back(std::move(cs));
  }
  const std::uint32_t n = plan.num_elements();
  class_of_.resize(n);
  base_of_.resize(n);
  for (std::uint32_t e = 0; e < n; ++e) {
    class_of_[e] = plan.class_of(e);
    base_of_[e] = plan.block_base(e);
  }
}

WordPlan::WordStream WordPlan::compile(
    const ExecutionPlan::StreamPlan& stream) {
  WordStream out;
  out.group_cost = &stream.group_cost;
  out.ops.reserve(stream.ops.size());
  for (const ExecOp& op : stream.ops) {
    WordOp w;
    w.group = op.group;
    w.peer_group = op.peer_group;
    w.face = op.face;
    w.off_a = op.col_a * kRows;
    w.off_b = op.col_b * kRows;
    w.off_dst = op.col_dst * kRows;
    w.count = op.count;
    w.imm = op.imm;
    w.imm2 = op.imm2;
    w.rows_a = op.rows_a;
    w.rows_b = op.rows_b;
    w.values = op.values;
    const auto rows_a = std::span<const std::uint32_t>(
        op.rows_a, op.rows_a != nullptr ? op.count : 0);
    switch (op.kind) {
      case ExecOp::Kind::Scatter: {
        const RowPattern p = pim::word::classify_rows(rows_a);
        w.start = p.start;
        w.stride = p.stride;
        w.code = p.kind == RowPattern::Kind::Contiguous ? Code::ScatterContig
                 : p.kind == RowPattern::Kind::Strided  ? Code::ScatterStrided
                                                        : Code::ScatterIndexed;
        break;
      }
      case ExecOp::Kind::Gather: {
        // The compiled gather stages reads before writes. With distinct
        // columns there is no overlap, so the direct shapes reproduce
        // that outcome; the only same-column shape that can skip the
        // staging buffer is the identity copy (start 0, unit stride),
        // where every read and write hit the same index. Everything
        // else on the destination column stays staged — the direct
        // kernels may then assert dependence-freedom (WAVEPIM_IVDEP)
        // unconditionally.
        const RowPattern p = pim::word::classify_rows(rows_a);
        w.start = p.start;
        w.stride = p.stride;
        if (p.kind == RowPattern::Kind::Contiguous) {
          w.code = w.off_a == w.off_dst && p.start != 0
                       ? Code::GatherStaged
                       : Code::GatherContig;
        } else if (p.kind == RowPattern::Kind::Strided) {
          w.code = w.off_a == w.off_dst ? Code::GatherStaged
                                        : Code::GatherStrided;
        } else {
          w.code = w.off_a == w.off_dst ? Code::GatherStaged
                                        : Code::GatherIndexed;
        }
        break;
      }
      case ExecOp::Kind::Arith:
        w.code = arith_code(op.opcode, RowPattern::Kind::Contiguous);
        break;
      case ExecOp::Kind::ArithRows: {
        const RowPattern p = pim::word::classify_rows(rows_a);
        w.start = p.start;
        w.stride = p.stride;
        w.code = arith_code(op.opcode, p.kind);
        break;
      }
      case ExecOp::Kind::Fscale:
        w.code = Code::Scale;
        break;
      case ExecOp::Kind::FscaleRows: {
        const RowPattern p = pim::word::classify_rows(rows_a);
        w.start = p.start;
        w.stride = p.stride;
        w.code = p.kind == RowPattern::Kind::Contiguous ? Code::Scale
                 : p.kind == RowPattern::Kind::Strided  ? Code::ScaleStrided
                                                        : Code::ScaleIndexed;
        break;
      }
      case ExecOp::Kind::Faxpy:
        w.code = Code::Axpy;
        break;
      case ExecOp::Kind::Move: {
        const RowPattern pa = pim::word::classify_rows(rows_a);
        const RowPattern pb = pim::word::classify_rows(
            std::span<const std::uint32_t>(op.rows_b, op.count));
        w.start = pa.start;
        w.stride = pa.stride;
        w.start_b = pb.start;
        w.stride_b = pb.stride;
        const bool regular = pa.kind != RowPattern::Kind::Indexed &&
                             pb.kind != RowPattern::Kind::Indexed;
        if (op.group == op.peer_group && w.off_a == w.off_dst) {
          // Source and destination may be the same physical column
          // (same element, or a periodic self-neighbour): only the
          // scalar-order indexed kernel reproduces the compiled loop's
          // overlap semantics. The regular Move shapes below are then
          // provably disjoint and free to assert WAVEPIM_IVDEP.
          w.code = Code::MoveIndexed;
        } else if (regular && pa.kind == RowPattern::Kind::Contiguous &&
                   pb.kind == RowPattern::Kind::Contiguous) {
          w.code = Code::MoveContig;
        } else if (regular) {
          w.code = Code::MoveStrided;
        } else {
          w.code = Code::MoveIndexed;
        }
        break;
      }
    }
    out.ops.push_back(w);
  }
  fuse_stream(out.ops);
  if (use_avx2_) {
    build_avx(out);
  }
  return out;
}

void WordPlan::fuse_stream(std::vector<WordOp>& ops) {
  const std::size_t before = ops.size();
  const std::uint64_t dead0 = fuse_stats_.dead_stores;
  const std::uint64_t pairs0 = fuse_stats_.chain_pairs;
  fuse_stats_.ops_before += before;
  if (fuse_enabled_ && ops.size() >= 2) {
    // Shape equality: both ops must walk the same row set in the same
    // order, so one fused iteration touches row r_i of every column
    // exactly once.
    const auto same_contig = [](const WordOp& p, const WordOp& q) {
      return p.start == q.start && p.count == q.count;
    };
    const auto same_strided = [&](const WordOp& p, const WordOp& q) {
      return same_contig(p, q) && p.stride == q.stride;
    };
    // Indexed lists are interned in the program arena, so pointer
    // equality identifies the identical list; distinctness is the extra
    // obligation the regular shapes satisfy by construction.
    const auto same_indexed = [](const WordOp& p, const WordOp& q) {
      return p.rows_a == q.rows_a && p.count == q.count &&
             rows_distinct(p.rows_a, p.count);
    };
    // The accumulate shape: q reads p's destination as its SECOND
    // operand (matching the kernels' `other + mid` evaluation order —
    // IEEE addition is not bitwise commutative for NaN payloads, so the
    // operand order is part of the contract) and p's destination is not
    // also q's first operand.
    const auto accumulates = [](const WordOp& p, const WordOp& q) {
      return q.off_b == p.off_dst && q.off_a != p.off_dst;
    };

    std::vector<WordOp> out;
    out.reserve(ops.size());
    std::size_t i = 0;
    while (i < ops.size()) {
      const WordOp& p = ops[i];
      if (i + 1 < ops.size()) {
        const WordOp& q = ops[i + 1];
        if (q.group == p.group) {
          Code fused = Code::Add;
          bool hit = false;
          if (p.code == Code::Scale && q.code == Code::Add &&
              accumulates(p, q) && same_contig(p, q)) {
            fused = Code::ScaleAdd;
            hit = true;
            ++fuse_stats_.scale_add;
          } else if (p.code == Code::ScaleStrided &&
                     q.code == Code::AddStrided && accumulates(p, q) &&
                     same_strided(p, q)) {
            fused = Code::ScaleAddStrided;
            hit = true;
            ++fuse_stats_.scale_add;
          } else if (p.code == Code::ScaleIndexed &&
                     q.code == Code::AddIndexed && accumulates(p, q) &&
                     same_indexed(p, q)) {
            fused = Code::ScaleAddIndexed;
            hit = true;
            ++fuse_stats_.scale_add;
          } else if (p.code == Code::Mul && q.code == Code::Add &&
                     accumulates(p, q) && same_contig(p, q)) {
            fused = Code::MulAdd;
            hit = true;
            ++fuse_stats_.mul_add;
          } else if (p.code == Code::MulStrided &&
                     q.code == Code::AddStrided && accumulates(p, q) &&
                     same_strided(p, q)) {
            fused = Code::MulAddStrided;
            hit = true;
            ++fuse_stats_.mul_add;
          } else if (p.code == Code::MulIndexed &&
                     q.code == Code::AddIndexed && accumulates(p, q) &&
                     same_indexed(p, q)) {
            fused = Code::MulAddIndexed;
            hit = true;
            ++fuse_stats_.mul_add;
          } else if (p.code == Code::Axpy && q.code == Code::Axpy &&
                     q.off_a == p.off_dst && p.count == q.count) {
            // The RK chain: q's source is p's freshly written register.
            fused = Code::AxpyPair;
            hit = true;
            ++fuse_stats_.axpy_pair;
          }
          if (hit) {
            WordOp f = p;
            f.code = fused;
            if (fused == Code::AxpyPair) {
              f.off_c = q.off_dst;
              f.imm3 = q.imm;
              f.imm4 = q.imm2;
            } else {
              f.off_c = q.off_a;   // the accumulate's other operand
              f.off_d = q.off_dst; // the accumulate's destination
            }
            out.push_back(f);
            i += 2;
            continue;
          }
        }
      }
      out.push_back(p);
      ++i;
    }
    ops = std::move(out);

    // Pass 2 — gathers feeding their consumer: GatherIndexed writes a
    // scratch column the very next (Mul | MulAdd) reads as its FIRST
    // operand over the same contiguous row range. The fused kernel
    // forwards the gathered value in a register (the scratch store
    // stays — hashed state). Obligations, per the kernel comments in
    // pim/word.h: the gather source column must be disjoint from every
    // column the pair writes (its reads hit arbitrary rows), and the
    // consumer's other operands must not alias the gather destination
    // (they are loaded before the unfused gather's store would land).
    {
      std::vector<WordOp> out2;
      out2.reserve(ops.size());
      std::size_t j = 0;
      while (j < ops.size()) {
        const WordOp& p = ops[j];
        if (j + 1 < ops.size() && p.code == Code::GatherIndexed) {
          const WordOp& q = ops[j + 1];
          const bool same_range = q.group == p.group && q.start == 0 &&
                                  q.count == p.count;
          if (same_range && q.code == Code::Mul && q.off_a == p.off_dst &&
              q.off_b != p.off_dst && p.off_a != p.off_dst &&
              p.off_a != q.off_dst) {
            WordOp f = p;
            f.code = Code::GatherMul;
            f.off_b = q.off_b;
            f.off_d = q.off_dst;
            out2.push_back(f);
            ++fuse_stats_.gather_fused;
            j += 2;
            continue;
          }
          if (same_range && q.code == Code::MulAdd &&
              q.off_a == p.off_dst && q.off_b != p.off_dst &&
              q.off_c == q.off_d && q.off_c != p.off_dst &&
              p.off_a != p.off_dst && p.off_a != q.off_dst &&
              p.off_a != q.off_c) {
            WordOp f = p;
            f.code = Code::GatherMulAdd;
            f.off_b = q.off_b;
            f.off_c = q.off_c;    // in-place accumulator
            f.off_d = q.off_dst;  // the product's scratch column
            out2.push_back(f);
            ++fuse_stats_.gather_fused;
            j += 2;
            continue;
          }
        }
        out2.push_back(p);
        ++j;
      }
      ops = std::move(out2);
    }

    // Pass 3 — accumulation chains: a run of identical-shape ScaleAdd
    // ops folding into ONE in-place accumulator (off_c == off_d)
    // through ONE scratch column becomes a chain head that keeps the
    // accumulator in a register across the run and stores only the last
    // link's product (earlier stores are dead: no link source may alias
    // the scratch or accumulator column, checked here, and state is
    // only observed at phase end). Links stay in the stream as data
    // carriers; `chain` tells the executor how many ops the head eats.
    {
      std::size_t j = 0;
      while (j < ops.size()) {
        WordOp& p = ops[j];
        const bool head_shape = (p.code == Code::ScaleAdd ||
                                 p.code == Code::ScaleAddStrided ||
                                 p.code == Code::ScaleAddIndexed) &&
                                p.off_c == p.off_d &&
                                p.off_a != p.off_dst && p.off_a != p.off_c;
        if (!head_shape) {
          ++j;
          continue;
        }
        std::size_t e = j + 1;
        while (e < ops.size() && e - j < kMaxChain) {
          const WordOp& q = ops[e];
          if (q.code != p.code || q.group != p.group ||
              q.count != p.count || q.start != p.start ||
              q.stride != p.stride || q.rows_a != p.rows_a ||
              q.off_dst != p.off_dst || q.off_c != p.off_c ||
              q.off_d != p.off_d || q.off_a == q.off_dst ||
              q.off_a == q.off_c) {
            break;
          }
          ++e;
        }
        const std::size_t len = e - j;
        if (len >= 2) {
          p.chain = static_cast<std::uint16_t>(len);
          p.code = p.code == Code::ScaleAdd ? Code::ChainScaleAdd
                   : p.code == Code::ScaleAddStrided
                       ? Code::ChainScaleAddStrided
                       : Code::ChainScaleAddIndexed;
          ++fuse_stats_.chains;
          fuse_stats_.chain_links += len;
        }
        j = e;
      }
    }

    // Pass 4 — dead scratch stores. A fused op's secondary store (the
    // forwarded intermediate, or the gathered value) is unobservable
    // when a later op of this SAME stream fully overwrites those rows
    // before anything reads the column: hashes, the witness and the
    // residency stores all observe state only after the stream
    // completes. The scan is conservative — any later read of the
    // column keeps the store, and only a same-shape (or contiguous
    // superset) overwrite confirms elision. Covering stores that are
    // themselves elided stay sound by transitivity: their own elision
    // required an identical-or-wider overwrite further down.
    {
      struct RowShape {
        std::uint32_t start;
        std::uint32_t stride;
        std::uint32_t count;
        const std::uint32_t* rows;
      };
      const auto covers = [](const RowShape& w, const RowShape& s) {
        if (w.rows != nullptr || s.rows != nullptr) {
          // Indexed lists are interned: pointer identity pins the rows.
          return w.rows == s.rows && w.count == s.count;
        }
        if (w.stride == 1 && s.stride == 1) {
          return w.start <= s.start && w.start + w.count >= s.start + s.count;
        }
        return w.start == s.start && w.stride == s.stride &&
               w.count == s.count;
      };
      const auto own_shape = [](const WordOp& q) -> RowShape {
        return {q.start, q.stride, q.count, q.rows_a};
      };
      const auto contig_shape = [](const WordOp& q) -> RowShape {
        return {0, 1, q.count, nullptr};
      };

      // Does ops[j] (with its chain links) read column (g, c)? Moves
      // conservatively count their source column against our element
      // even when it is a neighbour's block.
      const auto reads_col = [&ops](std::size_t j, std::uint8_t g,
                                    std::uint32_t c) -> bool {
        const WordOp& q = ops[j];
        const auto r = [&](std::uint8_t qg, std::uint32_t qc) {
          return qg == g && qc == c;
        };
        switch (q.code) {
          case Code::ScatterContig:
          case Code::ScatterStrided:
          case Code::ScatterIndexed:
            return false;
          case Code::GatherContig:
          case Code::GatherStrided:
          case Code::GatherIndexed:
          case Code::MoveContig:
          case Code::MoveStrided:
          case Code::MoveIndexed:
            return r(q.group, q.off_a);
          case Code::GatherStaged:
            return r(q.group, q.off_dst);
          case Code::Add:
          case Code::Sub:
          case Code::Mul:
          case Code::AddStrided:
          case Code::SubStrided:
          case Code::MulStrided:
          case Code::AddIndexed:
          case Code::SubIndexed:
          case Code::MulIndexed:
            return r(q.group, q.off_a) || r(q.group, q.off_b);
          case Code::GatherMul:
            // A forwarded b operand reads the plan's constant table,
            // not the column.
            return r(q.group, q.off_a) ||
                   (q.b_values == nullptr && r(q.group, q.off_b));
          case Code::Scale:
          case Code::ScaleStrided:
          case Code::ScaleIndexed:
            return r(q.group, q.off_a);
          case Code::Axpy:
            return r(q.group, q.off_a) || r(q.group, q.off_dst);
          case Code::ScaleAdd:
          case Code::ScaleAddStrided:
          case Code::ScaleAddIndexed:
            return r(q.group, q.off_a) || r(q.group, q.off_c);
          case Code::MulAdd:
          case Code::MulAddStrided:
          case Code::MulAddIndexed:
            return r(q.group, q.off_a) || r(q.group, q.off_b) ||
                   r(q.group, q.off_c);
          case Code::GatherMulAdd:
            return r(q.group, q.off_a) ||
                   (q.b_values == nullptr && r(q.group, q.off_b)) ||
                   r(q.group, q.off_c);
          case Code::AxpyPair:
            return r(q.group, q.off_a) || r(q.group, q.off_dst) ||
                   r(q.group, q.off_c);
          case Code::ChainScaleAdd:
          case Code::ChainScaleAddStrided:
          case Code::ChainScaleAddIndexed: {
            if (r(q.group, q.off_c)) {
              return true;
            }
            for (std::uint32_t l = 0; l < q.chain; ++l) {
              if (r(q.group, ops[j + l].off_a)) {
                return true;
              }
            }
            return false;
          }
        }
        return false;
      };

      // Does ops[j] fully overwrite (g, c) with a shape covering `s`?
      const auto overwrites = [&](std::size_t j, std::uint8_t g,
                                  std::uint32_t c, const RowShape& s) {
        const WordOp& q = ops[j];
        const auto w = [&](std::uint8_t qg, std::uint32_t qc,
                           const RowShape& qs) {
          return qg == g && qc == c && covers(qs, s);
        };
        switch (q.code) {
          case Code::ScatterContig:
          case Code::ScatterStrided:
          case Code::ScatterIndexed:
          case Code::Add:
          case Code::Sub:
          case Code::Mul:
          case Code::AddStrided:
          case Code::SubStrided:
          case Code::MulStrided:
          case Code::AddIndexed:
          case Code::SubIndexed:
          case Code::MulIndexed:
          case Code::Scale:
          case Code::ScaleStrided:
          case Code::ScaleIndexed:
            return w(q.group, q.off_dst, own_shape(q));
          case Code::GatherContig:
          case Code::GatherStrided:
          case Code::GatherIndexed:
          case Code::GatherStaged:
          case Code::Axpy:
            return w(q.group, q.off_dst, contig_shape(q));
          case Code::MoveContig:
          case Code::MoveStrided:
          case Code::MoveIndexed:
            return w(q.peer_group, q.off_dst,
                     RowShape{q.start_b, q.stride_b, q.count, q.rows_b});
          case Code::ScaleAdd:
          case Code::ScaleAddStrided:
          case Code::ScaleAddIndexed:
          case Code::MulAdd:
          case Code::MulAddStrided:
          case Code::MulAddIndexed:
          case Code::ChainScaleAdd:
          case Code::ChainScaleAddStrided:
          case Code::ChainScaleAddIndexed:
            return w(q.group, q.off_dst, own_shape(q)) ||
                   w(q.group, q.off_d, own_shape(q));
          case Code::AxpyPair:
            return w(q.group, q.off_dst, contig_shape(q)) ||
                   w(q.group, q.off_c, contig_shape(q));
          case Code::GatherMul:
            return w(q.group, q.off_dst, contig_shape(q)) ||
                   w(q.group, q.off_d, contig_shape(q));
          case Code::GatherMulAdd:
            return w(q.group, q.off_dst, contig_shape(q)) ||
                   w(q.group, q.off_d, contig_shape(q)) ||
                   w(q.group, q.off_c, contig_shape(q));
        }
        return false;
      };

      // Does ops[j] write column (g, c) at all (any shape)? Used by the
      // constant-forwarding scan, which must stop at even a partial
      // write — the column would no longer hold the scattered table.
      const auto writes_any = [&](std::size_t j, std::uint8_t g,
                                  std::uint32_t c) {
        const WordOp& q = ops[j];
        const auto w = [&](std::uint8_t qg, std::uint32_t qc) {
          return qg == g && qc == c;
        };
        switch (q.code) {
          case Code::ScatterContig:
          case Code::ScatterStrided:
          case Code::ScatterIndexed:
          case Code::GatherContig:
          case Code::GatherStrided:
          case Code::GatherIndexed:
          case Code::GatherStaged:
          case Code::Add:
          case Code::Sub:
          case Code::Mul:
          case Code::AddStrided:
          case Code::SubStrided:
          case Code::MulStrided:
          case Code::AddIndexed:
          case Code::SubIndexed:
          case Code::MulIndexed:
          case Code::Scale:
          case Code::ScaleStrided:
          case Code::ScaleIndexed:
          case Code::Axpy:
            return w(q.group, q.off_dst);
          case Code::MoveContig:
          case Code::MoveStrided:
          case Code::MoveIndexed:
            return w(q.peer_group, q.off_dst);
          case Code::ScaleAdd:
          case Code::ScaleAddStrided:
          case Code::ScaleAddIndexed:
          case Code::MulAdd:
          case Code::MulAddStrided:
          case Code::MulAddIndexed:
          case Code::ChainScaleAdd:
          case Code::ChainScaleAddStrided:
          case Code::ChainScaleAddIndexed:
            return w(q.group, q.off_dst) || w(q.group, q.off_d);
          case Code::AxpyPair:
            return w(q.group, q.off_dst) || w(q.group, q.off_c);
          case Code::GatherMul:
            return w(q.group, q.off_dst) || w(q.group, q.off_d);
          case Code::GatherMulAdd:
            return w(q.group, q.off_dst) || w(q.group, q.off_d) ||
                   w(q.group, q.off_c);
        }
        return false;
      };

      // Constant forwarding: a ScatterContig writes a static plan table
      // into a scratch column, and the fused gathers re-read it as
      // operand b every element. Until the next write to that column
      // the block bytes ARE the table, so those reads can come straight
      // from the plan's interned values — shared across elements, hot
      // in cache — without touching state. This also unblocks the
      // dead-store scan below: a scatter whose readers were all
      // forwarded and whose rows a later scatter fully overwrites is
      // unobservable and dropped from the stream entirely.
      for (std::size_t j = 0; j < ops.size(); j += ops[j].chain) {
        const WordOp& sc = ops[j];
        if (sc.code != Code::ScatterContig || sc.start != 0) {
          continue;
        }
        for (std::size_t k = j + ops[j].chain; k < ops.size();
             k += ops[k].chain) {
          WordOp& q = ops[k];
          if ((q.code == Code::GatherMul || q.code == Code::GatherMulAdd) &&
              q.group == sc.group && q.off_b == sc.off_dst &&
              q.b_values == nullptr && q.count <= sc.count) {
            q.b_values = sc.values;
          }
          if (writes_any(k, sc.group, sc.off_dst)) {
            break;
          }
        }
      }

      struct Cand {
        std::uint32_t col;
        RowShape shape;
        std::uint8_t bit;
      };
      // kDrop marks a whole op (a scatter whose store is its only
      // effect) for removal rather than a skip flag inside a kernel.
      constexpr std::uint8_t kDrop = 0x80;
      bool any_drop = false;
      std::size_t i4 = 0;
      while (i4 < ops.size()) {
        WordOp& p = ops[i4];
        std::array<Cand, 2> cands;
        int nc = 0;
        switch (p.code) {
          case Code::ScaleAdd:
          case Code::ScaleAddStrided:
          case Code::ScaleAddIndexed:
          case Code::MulAdd:
          case Code::MulAddStrided:
          case Code::MulAddIndexed:
          case Code::ChainScaleAdd:
          case Code::ChainScaleAddStrided:
          case Code::ChainScaleAddIndexed:
            cands[nc++] = {p.off_dst, own_shape(p), WordOp::kSkipMid};
            break;
          case Code::GatherMul:
            cands[nc++] = {p.off_dst, contig_shape(p), WordOp::kSkipG};
            break;
          case Code::GatherMulAdd:
            cands[nc++] = {p.off_dst, contig_shape(p), WordOp::kSkipG};
            cands[nc++] = {p.off_d, contig_shape(p), WordOp::kSkipMid};
            break;
          case Code::ScatterContig:
            cands[nc++] = {p.off_dst, own_shape(p), kDrop};
            break;
          default:
            break;
        }
        for (int ci = 0; ci < nc; ++ci) {
          for (std::size_t j = i4 + p.chain; j < ops.size();
               j += ops[j].chain) {
            if (reads_col(j, p.group, cands[ci].col)) {
              break;
            }
            if (overwrites(j, p.group, cands[ci].col, cands[ci].shape)) {
              p.skip |= cands[ci].bit;
              any_drop |= cands[ci].bit == kDrop;
              ++fuse_stats_.dead_stores;
              break;
            }
          }
        }
        i4 += p.chain;
      }
      if (any_drop) {
        std::vector<WordOp> kept;
        kept.reserve(ops.size());
        for (const WordOp& q : ops) {
          if ((q.skip & kDrop) == 0) {
            kept.push_back(q);
          }
        }
        ops = std::move(kept);
      }
    }

    // Pass 5 — chain pairing. The flux programs emit chains in PAIRS:
    // two adjacent same-shape runs over the IDENTICAL source columns,
    // folding into two different accumulators (one per flux component).
    // Merging them into one dual-accumulator head loads every source
    // row once and feeds both register accumulators. Bit-legal because
    // nothing any link reads is written by either chain — both
    // accumulators and the shared scratch are pairwise-distinct columns
    // disjoint from every source — so interleaving the two runs per row
    // preserves each accumulator's IEEE sequence exactly. The first
    // head's scratch store must already be elided (pass 4 proves it:
    // the second run overwrites the same rows), leaving the second
    // run's store as the only live one; its head keeps carrying the
    // second accumulator, immediates and skip bit as data.
    {
      std::size_t j5 = 0;
      while (j5 < ops.size()) {
        WordOp& p = ops[j5];
        const bool head = p.code == Code::ChainScaleAdd ||
                          p.code == Code::ChainScaleAddStrided ||
                          p.code == Code::ChainScaleAddIndexed;
        const std::size_t k = p.chain;
        const std::size_t bj = j5 + k;
        if (!head || (p.skip & WordOp::kSkipMid) == 0 ||
            bj >= ops.size()) {
          j5 += k;
          continue;
        }
        const WordOp& q = ops[bj];
        bool match = q.code == p.code && q.chain == p.chain &&
                     q.group == p.group && q.count == p.count &&
                     q.start == p.start && q.stride == p.stride &&
                     q.rows_a == p.rows_a && q.off_dst == p.off_dst &&
                     q.off_c != p.off_c && q.off_c != p.off_dst &&
                     p.off_c != p.off_dst;
        for (std::size_t l = 0; match && l < k; ++l) {
          const std::uint32_t src = ops[j5 + l].off_a;
          match = src == ops[bj + l].off_a && src != p.off_c &&
                  src != q.off_c;
        }
        if (!match) {
          j5 += k;
          continue;
        }
        p.chain2 = static_cast<std::uint16_t>(k);
        p.chain = static_cast<std::uint16_t>(2 * k);
        ++fuse_stats_.chain_pairs;
        j5 += p.chain;
      }
    }
  }
  std::size_t dispatched = 0;
  for (std::size_t j = 0; j < ops.size(); j += ops[j].chain) {
    ++dispatched;
  }
  fuse_stats_.ops_after += dispatched;
  // One sample per compiled stream; the trace summary's counter table
  // then shows per-stream means and the run's totals.
  trace::counter("word.fuse.ops_before", static_cast<double>(before));
  trace::counter("word.fuse.ops_after", static_cast<double>(dispatched));
  trace::counter("word.fuse.fused_pairs",
                 static_cast<double>(before - dispatched));
  trace::counter("word.fuse.dead_stores",
                 static_cast<double>(fuse_stats_.dead_stores - dead0));
  trace::counter("word.fuse.chain_pairs",
                 static_cast<double>(fuse_stats_.chain_pairs - pairs0));
}

void WordPlan::build_avx(WordStream& s) const {
  using AvxOp = wordavx::AvxOp;
  using Kind = AvxOp::Kind;
  // Destination windows are capped well above anything the DG programs
  // produce (row spans are <= 27); an op that exceeds a cap, or whose
  // window would run past the column end, falls back to its generic
  // kernel rather than widening the engine's proof obligations.
  constexpr std::uint32_t kMaxDstGroups = 8;
  constexpr std::uint32_t kMaxSrcGroups = 4;

  s.avx.ops.reserve(s.ops.size());
  // Arena offsets per AvxOp, patched into pointers once the arenas stop
  // growing (vector reallocation would invalidate anything earlier).
  std::vector<std::array<std::uint32_t, 3>> offs;
  offs.reserve(s.ops.size());
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> rows_buf, rows_buf2;

  // Materializes an op's row list (indexed ops carry it verbatim; the
  // contiguous/strided shapes rebuild it from start/stride).
  const auto rows_of = [](const std::uint32_t* idx, std::uint32_t start,
                          std::uint32_t stride, std::uint32_t count,
                          std::vector<std::uint32_t>& buf)
      -> std::span<const std::uint32_t> {
    if (idx != nullptr) {
      return {idx, count};
    }
    buf.resize(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      buf[k] = start + k * stride;
    }
    return buf;
  };

  // Chain lowering state: after a ChainScaleAdd head, its links are
  // emitted as Nop data carriers (off_a / imm rebased onto the head's
  // window) so the mirror stays 1:1 with the scalar stream. When the
  // head itself fell back, the scalar fallback executes the whole
  // chain and the Nops stay empty.
  std::uint32_t pending_links = 0;
  std::uint32_t chain_wbase = 0;
  bool chain_live = false;

  for (std::uint32_t wi = 0; wi < s.ops.size(); ++wi) {
    const WordOp& w = s.ops[wi];
    if (pending_links > 0) {
      --pending_links;
      AvxOp link;
      link.kind = Kind::Nop;
      if (chain_live) {
        link.off_a = w.off_a + chain_wbase;
        link.imm = w.imm;
      }
      s.avx.ops.push_back(link);
      offs.push_back({kNone, kNone, kNone});
      continue;
    }
    AvxOp a;
    a.group = w.group;
    a.peer_group = w.group;
    a.imm = w.imm;
    a.imm2 = w.imm2;
    a.skip = w.skip;
    std::array<std::uint32_t, 3> off = {kNone, kNone, kNone};

    // Window over a row list: returns false (-> fallback) when the
    // group form cannot hold it.
    const auto window = [&](std::span<const std::uint32_t> rows,
                            std::uint32_t max_groups, std::uint32_t& wbase,
                            std::uint32_t& ngroups) {
      const auto [lo, hi] = std::minmax_element(rows.begin(), rows.end());
      wbase = *lo;
      ngroups = (*hi - *lo + 8) / 8;
      return ngroups <= max_groups && wbase + ngroups * 8 <= kRows;
    };
    // Lane mask over the destination window (-1 = member row), plus the
    // dense-prefix count. Duplicate rows collapse onto one lane, which
    // preserves the scalar kernels' last-write-wins order because every
    // lane-filling loop below walks k ascending.
    const auto fill_mask = [&](std::span<const std::uint32_t> rows,
                               std::uint32_t wbase, std::uint32_t ngroups) {
      off[0] = static_cast<std::uint32_t>(s.lane_mask.size());
      s.lane_mask.resize(off[0] + ngroups * 8, 0);
      for (const std::uint32_t r : rows) {
        s.lane_mask[off[0] + (r - wbase)] = -1;
      }
      std::uint32_t nfull = 0;
      while (nfull < ngroups) {
        bool dense = true;
        for (std::uint32_t l = 0; l < 8; ++l) {
          dense &= s.lane_mask[off[0] + nfull * 8 + l] == -1;
        }
        if (!dense) {
          break;
        }
        ++nfull;
      }
      a.nfull = static_cast<std::uint16_t>(nfull);
      a.ngroups = static_cast<std::uint16_t>(ngroups);
    };

    bool ok = true;
    switch (w.code) {
      case Code::Add:
      case Code::AddStrided:
      case Code::AddIndexed:
      case Code::Sub:
      case Code::SubStrided:
      case Code::SubIndexed:
      case Code::Mul:
      case Code::MulStrided:
      case Code::MulIndexed:
      case Code::Scale:
      case Code::ScaleStrided:
      case Code::ScaleIndexed:
      case Code::Axpy: {
        // All operands share the destination's row list, so window
        // aliasing between dst and a source is group-aligned: each
        // 8-lane group reads and writes the same rows, and groups are
        // disjoint — no cross-group dependence even in place.
        switch (w.code) {
          case Code::Add:
          case Code::AddStrided:
          case Code::AddIndexed:
            a.kind = Kind::Add;
            break;
          case Code::Sub:
          case Code::SubStrided:
          case Code::SubIndexed:
            a.kind = Kind::Sub;
            break;
          case Code::Mul:
          case Code::MulStrided:
          case Code::MulIndexed:
            a.kind = Kind::Mul;
            break;
          case Code::Axpy:
            a.kind = Kind::Axpy;
            break;
          default:
            a.kind = Kind::Scale;
            break;
        }
        const auto rows =
            rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        std::uint32_t wbase = 0;
        std::uint32_t ngroups = 0;
        ok = window(rows, kMaxDstGroups, wbase, ngroups);
        if (ok) {
          fill_mask(rows, wbase, ngroups);
          a.off_a = w.off_a + wbase;
          a.off_b = w.off_b + wbase;
          a.off_dst = w.off_dst + wbase;
        }
        break;
      }
      case Code::ScatterContig:
      case Code::ScatterStrided:
      case Code::ScatterIndexed: {
        a.kind = Kind::Const;
        const auto rows =
            rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        std::uint32_t wbase = 0;
        std::uint32_t ngroups = 0;
        ok = window(rows, kMaxDstGroups, wbase, ngroups);
        if (ok) {
          fill_mask(rows, wbase, ngroups);
          a.off_dst = w.off_dst + wbase;
          off[1] = static_cast<std::uint32_t>(s.lane_values.size());
          s.lane_values.resize(off[1] + ngroups * 8, 0.0f);
          for (std::uint32_t k = 0; k < w.count; ++k) {
            s.lane_values[off[1] + (rows[k] - wbase)] = w.values[k];
          }
        }
        break;
      }
      case Code::ScaleAdd:
      case Code::ScaleAddStrided:
      case Code::ScaleAddIndexed:
      case Code::MulAdd:
      case Code::MulAddStrided:
      case Code::MulAddIndexed:
      case Code::AxpyPair: {
        // Both fused halves walk the identical row list (the fuse pass's
        // shape-equality obligation), so one destination window covers
        // every operand and the group-alignment aliasing argument of the
        // compute ops extends to the second store.
        switch (w.code) {
          case Code::AxpyPair:
            a.kind = Kind::AxpyPair;
            break;
          case Code::MulAdd:
          case Code::MulAddStrided:
          case Code::MulAddIndexed:
            a.kind = Kind::MulAdd;
            break;
          default:
            a.kind = Kind::ScaleAdd;
            break;
        }
        a.imm3 = w.imm3;
        a.imm4 = w.imm4;
        const bool pair = w.code == Code::AxpyPair;
        const auto rows =
            pair ? rows_of(nullptr, 0, 1, w.count, rows_buf)
                 : rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        std::uint32_t wbase = 0;
        std::uint32_t ngroups = 0;
        ok = window(rows, kMaxDstGroups, wbase, ngroups);
        if (ok) {
          fill_mask(rows, wbase, ngroups);
          a.off_a = w.off_a + wbase;
          a.off_b = w.off_b + wbase;
          a.off_dst = w.off_dst + wbase;
          a.off_c = w.off_c + wbase;
          a.off_d = w.off_d + wbase;
        }
        break;
      }
      case Code::ChainScaleAdd:
      case Code::ChainScaleAddStrided:
      case Code::ChainScaleAddIndexed: {
        // The head's window covers every link too (identical row lists,
        // the chain pass's shape obligation); link source offsets are
        // rebased when the Nops are emitted above. A paired head
        // (chain2 != 0) additionally reads the second run's head — a
        // plain Nop carrier in the mirror — for the second accumulator
        // window and the live scratch-store skip bit.
        a.kind = w.chain2 != 0 ? Kind::Chain2ScaleAdd : Kind::ChainScaleAdd;
        a.chain = w.chain;
        a.chain2 = w.chain2;
        const auto rows =
            rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        std::uint32_t wbase = 0;
        std::uint32_t ngroups = 0;
        ok = window(rows, kMaxDstGroups, wbase, ngroups);
        if (ok) {
          fill_mask(rows, wbase, ngroups);
          a.off_a = w.off_a + wbase;
          a.off_dst = w.off_dst + wbase;
          a.off_c = w.off_c + wbase;
          a.off_d = w.off_d + wbase;
          if (w.chain2 != 0) {
            const WordOp& second = s.ops[wi + w.chain2];
            a.off_b = second.off_c + wbase;
            a.skip = second.skip;
          }
          chain_wbase = wbase;
        }
        pending_links = w.chain - 1u;
        chain_live = ok;
        break;
      }
      case Code::GatherMul:
      case Code::GatherMulAdd: {
        // Source window + select network exactly like Permute; the
        // consumer's operands live on the contiguous destination rows.
        a.kind = w.code == Code::GatherMul ? Kind::GatherMul
                                           : Kind::GatherMulAdd;
        const auto src_rows =
            rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        const auto dst_rows = rows_of(nullptr, 0, 1, w.count, rows_buf2);
        std::uint32_t sbase = 0;
        std::uint32_t sgroups = 0;
        std::uint32_t dbase = 0;
        std::uint32_t dgroups = 0;
        ok = window(src_rows, kMaxSrcGroups, sbase, sgroups) &&
             window(dst_rows, kMaxDstGroups, dbase, dgroups);
        if (ok) {
          fill_mask(dst_rows, dbase, dgroups);
          a.wgroups = static_cast<std::uint16_t>(sgroups);
          a.off_a = w.off_a + sbase;
          a.off_dst = w.off_dst + dbase;
          a.off_b = w.off_b + dbase;
          a.off_c = w.off_c + dbase;
          a.off_d = w.off_d + dbase;
          off[2] = static_cast<std::uint32_t>(s.lane_perm.size());
          s.lane_perm.resize(off[2] + dgroups * 8, 0);
          for (std::uint32_t k = 0; k < w.count; ++k) {
            s.lane_perm[off[2] + (dst_rows[k] - dbase)] =
                static_cast<std::int32_t>(src_rows[k] - sbase);
          }
          if (w.b_values != nullptr) {
            // Forwarded constant b: pad the plan table out to the lane
            // window (masked lanes multiply zeros that are blended
            // away) so the vector loads never run past the table end.
            off[1] = static_cast<std::uint32_t>(s.lane_values.size());
            s.lane_values.resize(off[1] + dgroups * 8, 0.0f);
            for (std::uint32_t k = 0; k < w.count; ++k) {
              s.lane_values[off[1] + (dst_rows[k] - dbase)] = w.b_values[k];
            }
          }
        }
        break;
      }
      case Code::GatherContig:
      case Code::GatherStrided:
      case Code::GatherIndexed:
      case Code::GatherStaged:
      case Code::MoveContig:
      case Code::MoveStrided:
      case Code::MoveIndexed: {
        a.kind = Kind::Permute;
        const bool is_move = w.code == Code::MoveContig ||
                             w.code == Code::MoveStrided ||
                             w.code == Code::MoveIndexed;
        // Gathers write rows 0..count-1 of the destination column of
        // the same block; moves write the rows_b pattern of the peer
        // block. Sources are the rows_a pattern either way. The whole
        // source window is pre-loaded before any store, which subsumes
        // the GatherStaged / overlapping-move scratch staging.
        const auto src_rows =
            rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        const auto dst_rows =
            is_move ? rows_of(w.rows_b, w.start_b, w.stride_b, w.count,
                              rows_buf2)
                    : rows_of(nullptr, 0, 1, w.count, rows_buf2);
        if (is_move) {
          a.peer_group = w.peer_group;
          a.face = w.face;
        }
        std::uint32_t sbase = 0;
        std::uint32_t sgroups = 0;
        std::uint32_t dbase = 0;
        std::uint32_t dgroups = 0;
        ok = window(src_rows, kMaxSrcGroups, sbase, sgroups) &&
             window(dst_rows, kMaxDstGroups, dbase, dgroups);
        if (ok) {
          fill_mask(dst_rows, dbase, dgroups);
          a.wgroups = static_cast<std::uint16_t>(sgroups);
          a.off_a = w.off_a + sbase;
          a.off_dst = w.off_dst + dbase;
          off[2] = static_cast<std::uint32_t>(s.lane_perm.size());
          s.lane_perm.resize(off[2] + dgroups * 8, 0);
          for (std::uint32_t k = 0; k < w.count; ++k) {
            s.lane_perm[off[2] + (dst_rows[k] - dbase)] =
                static_cast<std::int32_t>(src_rows[k] - sbase);
          }
        }
        break;
      }
    }

    if (!ok) {
      a = AvxOp{};
      a.kind = Kind::Fallback;
      a.fallback_idx = wi;
      off = {kNone, kNone, kNone};
    }
    s.avx.ops.push_back(a);
    offs.push_back(off);
  }

  for (std::size_t i = 0; i < s.avx.ops.size(); ++i) {
    AvxOp& a = s.avx.ops[i];
    if (offs[i][0] != kNone) {
      a.mask = s.lane_mask.data() + offs[i][0];
    }
    if (offs[i][1] != kNone) {
      a.values = s.lane_values.data() + offs[i][1];
    }
    if (offs[i][2] != kNone) {
      a.perm = s.lane_perm.data() + offs[i][2];
    }
  }
}

template <typename Fn>
void WordPlan::for_class_runs(std::span<const mesh::ElementId> elems,
                              Fn&& fn) const {
  std::size_t i = 0;
  while (i < elems.size()) {
    const std::uint32_t cls = class_of_[elems[i]];
    std::size_t j = i + 1;
    while (j < elems.size() && class_of_[elems[j]] == cls) {
      ++j;
    }
    fn(elems.subspan(i, j - i), classes_[cls]);
    i = j;
  }
}

void WordPlan::run_volume(const BlockResolver& blocks,
                          std::span<const mesh::ElementId> elems) const {
  for_class_runs(elems, [&](std::span<const mesh::ElementId> run,
                            const ClassStreams& cs) {
    run_stream(blocks, run, cs.volume);
  });
}

void WordPlan::run_flux_group(const BlockResolver& blocks,
                              std::span<const mesh::ElementId> elems,
                              FaceGroup group) const {
  for_class_runs(elems, [&](std::span<const mesh::ElementId> run,
                            const ClassStreams& cs) {
    run_stream(blocks, run, cs.flux[static_cast<std::size_t>(group)]);
  });
}

void WordPlan::run_integration(const BlockResolver& blocks,
                               std::span<const mesh::ElementId> elems,
                               const WordStream& stage) const {
  // Integration is class-independent (one stream per RK stage), so the
  // whole range is one run.
  run_stream(blocks, elems, stage);
}

const WordPlan::WordStream& WordPlan::integration(int stage, float dt) {
  const auto key = std::make_pair(stage, std::bit_cast<std::uint32_t>(dt));
  const auto it = integration_.find(key);
  if (it != integration_.end()) {
    return it->second;
  }
  return integration_.emplace(key, compile(plan_.integration(stage, dt)))
      .first->second;
}

namespace {

/// The op-major hot loop, split out of run_stream so target cloning can
/// compile an AVX2 body (resolved once per process through an ifunc)
/// while the library itself stays baseline x86-64. All WAVEPIM_IVDEP
/// loops below touch provably dependence-free index sets — compile()
/// routes every shape that could overlap partially to the staged or
/// scalar-order indexed kernels.
WAVEPIM_TARGET_CLONES
void exec_ops(std::span<const WordPlan::WordOp> ops,
              const BlockResolver& blocks, const ExecutionPlan& plan,
              std::span<const mesh::ElementId> elems, float* const* ptrs,
              std::uint32_t num_groups) {
  using WordOp = WordPlan::WordOp;
  const std::size_t n = elems.size();

  // Move sources may sit in a neighbour element's block (face >= 0).
  const auto move_src = [&](const WordOp& op, std::size_t i) -> const float* {
    if (op.face < 0) {
      return ptrs[i * num_groups + op.group];
    }
    const std::uint32_t nb =
        plan.neighbor_bases(elems[i])[static_cast<std::size_t>(op.face)];
    return blocks(nb + op.group).words().data();
  };

  // Chain heads consume their link ops, so the walk advances by
  // op.chain (1 for everything else).
  for (std::size_t oi = 0; oi < ops.size(); oi += ops[oi].chain) {
    const WordOp& op = ops[oi];
    switch (op.code) {
      case Code::ScatterContig:
        for (std::size_t i = 0; i < n; ++i) {
          float* d = ptrs[i * num_groups + op.group] + op.off_dst + op.start;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k] = op.values[k];
          }
        }
        break;
      case Code::ScatterStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* d = ptrs[i * num_groups + op.group] + op.off_dst + op.start;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k * op.stride] = op.values[k];
          }
        }
        break;
      case Code::ScatterIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          pim::word::scatter(ptrs[i * num_groups + op.group] + op.off_dst,
                             op.rows_a, op.values, op.count);
        }
        break;
      case Code::GatherContig:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          float* d = w + op.off_dst;
          const float* s = w + op.off_a + op.start;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k] = s[k];
          }
        }
        break;
      case Code::GatherStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          float* d = w + op.off_dst;
          const float* s = w + op.off_a + op.start;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k] = s[k * op.stride];
          }
        }
        break;
      case Code::GatherIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::gather(w + op.off_dst, w + op.off_a, op.rows_a,
                            op.count);
        }
        break;
      case Code::GatherStaged: {
        thread_local std::array<float, kRows> scratch;
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::gather_in_place(w + op.off_dst, op.rows_a, op.count,
                                     scratch.data());
        }
        break;
      }
      case Code::Add:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::add(w + op.off_dst + op.start, w + op.off_a + op.start,
                         w + op.off_b + op.start, op.count);
        }
        break;
      case Code::Sub:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::sub(w + op.off_dst + op.start, w + op.off_a + op.start,
                         w + op.off_b + op.start, op.count);
        }
        break;
      case Code::Mul:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul(w + op.off_dst + op.start, w + op.off_a + op.start,
                         w + op.off_b + op.start, op.count);
        }
        break;
      case Code::AddStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::add_strided(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.start, op.stride, op.count);
        }
        break;
      case Code::SubStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::sub_strided(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.start, op.stride, op.count);
        }
        break;
      case Code::MulStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul_strided(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.start, op.stride, op.count);
        }
        break;
      case Code::AddIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::add_indexed(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.rows_a, op.count);
        }
        break;
      case Code::SubIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::sub_indexed(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.rows_a, op.count);
        }
        break;
      case Code::MulIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul_indexed(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.rows_a, op.count);
        }
        break;
      case Code::Scale:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale(w + op.off_dst + op.start, w + op.off_a + op.start,
                           op.imm, op.count);
        }
        break;
      case Code::ScaleStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale_strided(w + op.off_dst, w + op.off_a, op.imm,
                                   op.start, op.stride, op.count);
        }
        break;
      case Code::ScaleIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale_indexed(w + op.off_dst, w + op.off_a, op.imm,
                                   op.rows_a, op.count);
        }
        break;
      case Code::Axpy:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::axpy(w + op.off_dst, w + op.off_a, op.imm, op.imm2,
                          op.count);
        }
        break;
      case Code::ScaleAdd:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale_add(w + op.off_d + op.start,
                               w + op.off_dst + op.start,
                               w + op.off_a + op.start,
                               w + op.off_c + op.start, op.imm, op.count,
                               (op.skip & WordOp::kSkipMid) == 0);
        }
        break;
      case Code::ScaleAddStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale_add_strided(w + op.off_d, w + op.off_dst,
                                       w + op.off_a, w + op.off_c, op.imm,
                                       op.start, op.stride, op.count,
                                       (op.skip & WordOp::kSkipMid) == 0);
        }
        break;
      case Code::ScaleAddIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale_add_indexed(w + op.off_d, w + op.off_dst,
                                       w + op.off_a, w + op.off_c, op.imm,
                                       op.rows_a, op.count,
                                       (op.skip & WordOp::kSkipMid) == 0);
        }
        break;
      case Code::MulAdd:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul_add(w + op.off_d + op.start,
                             w + op.off_dst + op.start,
                             w + op.off_a + op.start, w + op.off_b + op.start,
                             w + op.off_c + op.start, op.count,
                             (op.skip & WordOp::kSkipMid) == 0);
        }
        break;
      case Code::MulAddStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul_add_strided(w + op.off_d, w + op.off_dst,
                                     w + op.off_a, w + op.off_b, w + op.off_c,
                                     op.start, op.stride, op.count,
                                     (op.skip & WordOp::kSkipMid) == 0);
        }
        break;
      case Code::MulAddIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul_add_indexed(w + op.off_d, w + op.off_dst,
                                     w + op.off_a, w + op.off_b, w + op.off_c,
                                     op.rows_a, op.count,
                                     (op.skip & WordOp::kSkipMid) == 0);
        }
        break;
      case Code::AxpyPair:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::axpy_pair(w + op.off_dst, w + op.off_a, w + op.off_c,
                               op.imm, op.imm2, op.imm3, op.imm4, op.count);
        }
        break;
      case Code::ChainScaleAdd:
      case Code::ChainScaleAddStrided:
      case Code::ChainScaleAddIndexed: {
        // op and its links are consecutive in `ops`; every link shares
        // the head's shape, scratch (off_dst) and accumulator (off_c)
        // and contributes its own source column + immediate. A paired
        // head (chain2 != 0) spans TWO runs of chain2 links each over
        // the same sources; the second run's head (at oi + chain2)
        // carries the second accumulator, immediates and the skip bit
        // of the only live scratch store (the first run's was elided —
        // a pairing precondition).
        const bool paired = op.chain2 != 0;
        const std::uint32_t k = paired ? op.chain2 : op.chain;
        std::array<const float*, kMaxChain> srcs;
        std::array<float, kMaxChain> imms;
        std::array<float, kMaxChain> imms2;
        for (std::uint32_t j = 0; j < k; ++j) {
          imms[j] = ops[oi + j].imm;
          if (paired) {
            imms2[j] = ops[oi + k + j].imm;
          }
        }
        const std::uint32_t off_c2 = paired ? ops[oi + k].off_c : 0;
        const bool store_mid =
            ((paired ? ops[oi + k].skip : op.skip) & WordOp::kSkipMid) == 0;
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          if (op.code == Code::ChainScaleAdd) {
            for (std::uint32_t j = 0; j < k; ++j) {
              srcs[j] = w + ops[oi + j].off_a + op.start;
            }
            if (paired) {
              pim::word::chain2_scale_add(
                  w + op.off_c + op.start, w + off_c2 + op.start,
                  w + op.off_dst + op.start, srcs.data(), imms.data(),
                  imms2.data(), k, op.count, store_mid);
            } else {
              pim::word::chain_scale_add(w + op.off_c + op.start,
                                         w + op.off_dst + op.start,
                                         srcs.data(), imms.data(), k,
                                         op.count, store_mid);
            }
          } else if (op.code == Code::ChainScaleAddStrided) {
            for (std::uint32_t j = 0; j < k; ++j) {
              srcs[j] = w + ops[oi + j].off_a;
            }
            if (paired) {
              pim::word::chain2_scale_add_strided(
                  w + op.off_c, w + off_c2, w + op.off_dst, srcs.data(),
                  imms.data(), imms2.data(), k, op.start, op.stride,
                  op.count, store_mid);
            } else {
              pim::word::chain_scale_add_strided(
                  w + op.off_c, w + op.off_dst, srcs.data(), imms.data(), k,
                  op.start, op.stride, op.count, store_mid);
            }
          } else {
            for (std::uint32_t j = 0; j < k; ++j) {
              srcs[j] = w + ops[oi + j].off_a;
            }
            if (paired) {
              pim::word::chain2_scale_add_indexed(
                  w + op.off_c, w + off_c2, w + op.off_dst, srcs.data(),
                  imms.data(), imms2.data(), k, op.rows_a, op.count,
                  store_mid);
            } else {
              pim::word::chain_scale_add_indexed(
                  w + op.off_c, w + op.off_dst, srcs.data(), imms.data(), k,
                  op.rows_a, op.count, store_mid);
            }
          }
        }
        break;
      }
      case Code::GatherMul:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::gather_mul(w + op.off_d, w + op.off_dst, w + op.off_a,
                                op.rows_a,
                                op.b_values ? op.b_values : w + op.off_b,
                                op.count, (op.skip & WordOp::kSkipG) == 0);
        }
        break;
      case Code::GatherMulAdd:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::gather_mul_add(w + op.off_c, w + op.off_d, w + op.off_dst,
                                    w + op.off_a, op.rows_a,
                                    op.b_values ? op.b_values : w + op.off_b,
                                    op.count,
                                    (op.skip & WordOp::kSkipG) == 0,
                                    (op.skip & WordOp::kSkipMid) == 0);
        }
        break;
      case Code::MoveContig:
        for (std::size_t i = 0; i < n; ++i) {
          const float* s = move_src(op, i) + op.off_a + op.start;
          float* d =
              ptrs[i * num_groups + op.peer_group] + op.off_dst + op.start_b;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k] = s[k];
          }
        }
        break;
      case Code::MoveStrided:
        for (std::size_t i = 0; i < n; ++i) {
          const float* s = move_src(op, i) + op.off_a;
          float* d = ptrs[i * num_groups + op.peer_group] + op.off_dst;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[op.start_b + k * op.stride_b] = s[op.start + k * op.stride];
          }
        }
        break;
      case Code::MoveIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          pim::word::move(
              ptrs[i * num_groups + op.peer_group] + op.off_dst, op.rows_b,
              move_src(op, i) + op.off_a, op.rows_a, op.count);
        }
        break;
    }
  }
}

/// AVX2 engine escape hatch: executes one generic WordOp of the mirror
/// stream, in stream position, through the scalar kernels.
void run_fallback_op(const wordavx::ExecCtx& ctx, std::uint32_t idx,
                     const void* fallback_ctx) {
  const auto* stream = static_cast<const WordPlan::WordStream*>(fallback_ctx);
  // Chain heads need their link ops in the span (the scalar walk reads
  // ops[idx .. idx+chain)); everything else is a 1-op span.
  exec_ops(std::span<const WordPlan::WordOp>(&stream->ops[idx],
                                             stream->ops[idx].chain),
           *ctx.blocks, *ctx.plan, ctx.elems, ctx.ptrs, ctx.num_groups);
}

}  // namespace

void WordPlan::run_stream(const BlockResolver& blocks,
                          std::span<const mesh::ElementId> elems,
                          const WordStream& stream) const {
  // Per-run block storage pointers, resolved once: the op loops index
  // ptrs[element * num_groups + group] with no further indirection.
  // Thread-local and capacity-retaining, so steady-state steps allocate
  // nothing.
  thread_local std::vector<float*> ptr_tls;
  const std::size_t n = elems.size();
  const std::uint32_t num_groups = num_groups_;
  ptr_tls.resize(n * num_groups);
  float** const ptrs = ptr_tls.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t base = base_of_[elems[i]];
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      ptrs[i * num_groups + g] = blocks(base + g).words().data();
    }
  }

  // Element-major blocking: run the WHOLE kernel stream over one small
  // sub-chunk of elements before moving to the next, so the sub-chunk's
  // touched columns stay L1-resident across every op of the stream
  // (op-major order re-walks the full chunk's working set per op).
  // Elements' writes are disjoint, so this reorders only across
  // elements — bit-identity is untouched. move_src indexes elems and
  // ptrs consistently because both are sliced together.
  const std::size_t sub =
      block_elems_ == 0 ? (n == 0 ? 1 : n) : block_elems_;
  for (std::size_t s0 = 0; s0 < n; s0 += sub) {
    const std::size_t m = std::min(sub, n - s0);
    const auto sub_elems = elems.subspan(s0, m);
    float* const* sub_ptrs = ptrs + s0 * num_groups;
    if (use_avx2_) {
      wordavx::ExecCtx ctx;
      ctx.blocks = &blocks;
      ctx.plan = &plan_;
      ctx.elems = sub_elems;
      ctx.ptrs = sub_ptrs;
      ctx.num_groups = num_groups;
      ctx.fallback = &run_fallback_op;
      ctx.fallback_ctx = &stream;
      wordavx::exec(stream.avx, ctx);
    } else {
      exec_ops(stream.ops, blocks, plan_, sub_elems, sub_ptrs, num_groups);
    }
  }

  // The batched per-block cost aggregates, per element in range order —
  // the same values the compiled tier applies after its per-element op
  // loop (elements own disjoint blocks, so cross-element order is
  // ledger-irrelevant).
  const auto& charges = *stream.group_cost;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t base = base_of_[elems[i]];
    for (const auto& [group, cost] : charges) {
      blocks(base + group).charge(cost);
    }
  }
}

}  // namespace wavepim::mapping
