#include "mapping/word_plan.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>

#include "common/error.h"
#include "pim/block.h"
#include "pim/word.h"

namespace wavepim::mapping {

namespace {

using Code = WordPlan::WordOp::Code;
using ExecOp = ExecutionPlan::Op;
using pim::word::RowPattern;

constexpr std::uint32_t kRows = pim::Block::kRows;

/// The engine is opt-out for testing: WAVEPIM_WORD_AVX2=0 pins the
/// generic kernels even on AVX2 hosts (the differential unit tests use
/// this to compare the two back-ends on the same machine).
bool avx_engine_enabled() {
  static const bool on = [] {
    const char* e = std::getenv("WAVEPIM_WORD_AVX2");
    if (e != nullptr && e[0] == '0' && e[1] == '\0') {
      return false;
    }
    return wordavx::supported();
  }();
  return on;
}

Code arith_code(pim::Opcode opcode, RowPattern::Kind kind) {
  switch (opcode) {
    case pim::Opcode::Fadd:
      return kind == RowPattern::Kind::Contiguous ? Code::Add
             : kind == RowPattern::Kind::Strided  ? Code::AddStrided
                                                  : Code::AddIndexed;
    case pim::Opcode::Fsub:
      return kind == RowPattern::Kind::Contiguous ? Code::Sub
             : kind == RowPattern::Kind::Strided  ? Code::SubStrided
                                                  : Code::SubIndexed;
    case pim::Opcode::Fmul:
      return kind == RowPattern::Kind::Contiguous ? Code::Mul
             : kind == RowPattern::Kind::Strided  ? Code::MulStrided
                                                  : Code::MulIndexed;
    default:
      WAVEPIM_REQUIRE(false, "unsupported two-operand arith opcode");
  }
  return Code::Add;
}

}  // namespace

WordPlan::WordPlan(ExecutionPlan& plan)
    : plan_(plan), num_groups_(plan.num_groups()) {
  use_avx2_ = avx_engine_enabled();
  classes_.reserve(plan.num_classes());
  for (std::uint32_t cls = 0; cls < plan.num_classes(); ++cls) {
    ClassStreams cs;
    cs.volume = compile(plan.volume_plan(cls));
    for (std::uint32_t g = 0; g < kNumFaceGroups; ++g) {
      cs.flux[g] = compile(plan.flux_plan(cls, static_cast<FaceGroup>(g)));
    }
    classes_.push_back(std::move(cs));
  }
  const std::uint32_t n = plan.num_elements();
  class_of_.resize(n);
  base_of_.resize(n);
  for (std::uint32_t e = 0; e < n; ++e) {
    class_of_[e] = plan.class_of(e);
    base_of_[e] = plan.block_base(e);
  }
}

WordPlan::WordStream WordPlan::compile(
    const ExecutionPlan::StreamPlan& stream) const {
  WordStream out;
  out.group_cost = &stream.group_cost;
  out.ops.reserve(stream.ops.size());
  for (const ExecOp& op : stream.ops) {
    WordOp w;
    w.group = op.group;
    w.peer_group = op.peer_group;
    w.face = op.face;
    w.off_a = op.col_a * kRows;
    w.off_b = op.col_b * kRows;
    w.off_dst = op.col_dst * kRows;
    w.count = op.count;
    w.imm = op.imm;
    w.imm2 = op.imm2;
    w.rows_a = op.rows_a;
    w.rows_b = op.rows_b;
    w.values = op.values;
    const auto rows_a = std::span<const std::uint32_t>(
        op.rows_a, op.rows_a != nullptr ? op.count : 0);
    switch (op.kind) {
      case ExecOp::Kind::Scatter: {
        const RowPattern p = pim::word::classify_rows(rows_a);
        w.start = p.start;
        w.stride = p.stride;
        w.code = p.kind == RowPattern::Kind::Contiguous ? Code::ScatterContig
                 : p.kind == RowPattern::Kind::Strided  ? Code::ScatterStrided
                                                        : Code::ScatterIndexed;
        break;
      }
      case ExecOp::Kind::Gather: {
        // The compiled gather stages reads before writes. With distinct
        // columns there is no overlap, so the direct shapes reproduce
        // that outcome; the only same-column shape that can skip the
        // staging buffer is the identity copy (start 0, unit stride),
        // where every read and write hit the same index. Everything
        // else on the destination column stays staged — the direct
        // kernels may then assert dependence-freedom (WAVEPIM_IVDEP)
        // unconditionally.
        const RowPattern p = pim::word::classify_rows(rows_a);
        w.start = p.start;
        w.stride = p.stride;
        if (p.kind == RowPattern::Kind::Contiguous) {
          w.code = w.off_a == w.off_dst && p.start != 0
                       ? Code::GatherStaged
                       : Code::GatherContig;
        } else if (p.kind == RowPattern::Kind::Strided) {
          w.code = w.off_a == w.off_dst ? Code::GatherStaged
                                        : Code::GatherStrided;
        } else {
          w.code = w.off_a == w.off_dst ? Code::GatherStaged
                                        : Code::GatherIndexed;
        }
        break;
      }
      case ExecOp::Kind::Arith:
        w.code = arith_code(op.opcode, RowPattern::Kind::Contiguous);
        break;
      case ExecOp::Kind::ArithRows: {
        const RowPattern p = pim::word::classify_rows(rows_a);
        w.start = p.start;
        w.stride = p.stride;
        w.code = arith_code(op.opcode, p.kind);
        break;
      }
      case ExecOp::Kind::Fscale:
        w.code = Code::Scale;
        break;
      case ExecOp::Kind::FscaleRows: {
        const RowPattern p = pim::word::classify_rows(rows_a);
        w.start = p.start;
        w.stride = p.stride;
        w.code = p.kind == RowPattern::Kind::Contiguous ? Code::Scale
                 : p.kind == RowPattern::Kind::Strided  ? Code::ScaleStrided
                                                        : Code::ScaleIndexed;
        break;
      }
      case ExecOp::Kind::Faxpy:
        w.code = Code::Axpy;
        break;
      case ExecOp::Kind::Move: {
        const RowPattern pa = pim::word::classify_rows(rows_a);
        const RowPattern pb = pim::word::classify_rows(
            std::span<const std::uint32_t>(op.rows_b, op.count));
        w.start = pa.start;
        w.stride = pa.stride;
        w.start_b = pb.start;
        w.stride_b = pb.stride;
        const bool regular = pa.kind != RowPattern::Kind::Indexed &&
                             pb.kind != RowPattern::Kind::Indexed;
        if (op.group == op.peer_group && w.off_a == w.off_dst) {
          // Source and destination may be the same physical column
          // (same element, or a periodic self-neighbour): only the
          // scalar-order indexed kernel reproduces the compiled loop's
          // overlap semantics. The regular Move shapes below are then
          // provably disjoint and free to assert WAVEPIM_IVDEP.
          w.code = Code::MoveIndexed;
        } else if (regular && pa.kind == RowPattern::Kind::Contiguous &&
                   pb.kind == RowPattern::Kind::Contiguous) {
          w.code = Code::MoveContig;
        } else if (regular) {
          w.code = Code::MoveStrided;
        } else {
          w.code = Code::MoveIndexed;
        }
        break;
      }
    }
    out.ops.push_back(w);
  }
  if (use_avx2_) {
    build_avx(out);
  }
  return out;
}

void WordPlan::build_avx(WordStream& s) const {
  using AvxOp = wordavx::AvxOp;
  using Kind = AvxOp::Kind;
  // Destination windows are capped well above anything the DG programs
  // produce (row spans are <= 27); an op that exceeds a cap, or whose
  // window would run past the column end, falls back to its generic
  // kernel rather than widening the engine's proof obligations.
  constexpr std::uint32_t kMaxDstGroups = 8;
  constexpr std::uint32_t kMaxSrcGroups = 4;

  s.avx.ops.reserve(s.ops.size());
  // Arena offsets per AvxOp, patched into pointers once the arenas stop
  // growing (vector reallocation would invalidate anything earlier).
  std::vector<std::array<std::uint32_t, 3>> offs;
  offs.reserve(s.ops.size());
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> rows_buf, rows_buf2;

  // Materializes an op's row list (indexed ops carry it verbatim; the
  // contiguous/strided shapes rebuild it from start/stride).
  const auto rows_of = [](const std::uint32_t* idx, std::uint32_t start,
                          std::uint32_t stride, std::uint32_t count,
                          std::vector<std::uint32_t>& buf)
      -> std::span<const std::uint32_t> {
    if (idx != nullptr) {
      return {idx, count};
    }
    buf.resize(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      buf[k] = start + k * stride;
    }
    return buf;
  };

  for (std::uint32_t wi = 0; wi < s.ops.size(); ++wi) {
    const WordOp& w = s.ops[wi];
    AvxOp a;
    a.group = w.group;
    a.peer_group = w.group;
    a.imm = w.imm;
    a.imm2 = w.imm2;
    std::array<std::uint32_t, 3> off = {kNone, kNone, kNone};

    // Window over a row list: returns false (-> fallback) when the
    // group form cannot hold it.
    const auto window = [&](std::span<const std::uint32_t> rows,
                            std::uint32_t max_groups, std::uint32_t& wbase,
                            std::uint32_t& ngroups) {
      const auto [lo, hi] = std::minmax_element(rows.begin(), rows.end());
      wbase = *lo;
      ngroups = (*hi - *lo + 8) / 8;
      return ngroups <= max_groups && wbase + ngroups * 8 <= kRows;
    };
    // Lane mask over the destination window (-1 = member row), plus the
    // dense-prefix count. Duplicate rows collapse onto one lane, which
    // preserves the scalar kernels' last-write-wins order because every
    // lane-filling loop below walks k ascending.
    const auto fill_mask = [&](std::span<const std::uint32_t> rows,
                               std::uint32_t wbase, std::uint32_t ngroups) {
      off[0] = static_cast<std::uint32_t>(s.lane_mask.size());
      s.lane_mask.resize(off[0] + ngroups * 8, 0);
      for (const std::uint32_t r : rows) {
        s.lane_mask[off[0] + (r - wbase)] = -1;
      }
      std::uint32_t nfull = 0;
      while (nfull < ngroups) {
        bool dense = true;
        for (std::uint32_t l = 0; l < 8; ++l) {
          dense &= s.lane_mask[off[0] + nfull * 8 + l] == -1;
        }
        if (!dense) {
          break;
        }
        ++nfull;
      }
      a.nfull = static_cast<std::uint16_t>(nfull);
      a.ngroups = static_cast<std::uint16_t>(ngroups);
    };

    bool ok = true;
    switch (w.code) {
      case Code::Add:
      case Code::AddStrided:
      case Code::AddIndexed:
      case Code::Sub:
      case Code::SubStrided:
      case Code::SubIndexed:
      case Code::Mul:
      case Code::MulStrided:
      case Code::MulIndexed:
      case Code::Scale:
      case Code::ScaleStrided:
      case Code::ScaleIndexed:
      case Code::Axpy: {
        // All operands share the destination's row list, so window
        // aliasing between dst and a source is group-aligned: each
        // 8-lane group reads and writes the same rows, and groups are
        // disjoint — no cross-group dependence even in place.
        switch (w.code) {
          case Code::Add:
          case Code::AddStrided:
          case Code::AddIndexed:
            a.kind = Kind::Add;
            break;
          case Code::Sub:
          case Code::SubStrided:
          case Code::SubIndexed:
            a.kind = Kind::Sub;
            break;
          case Code::Mul:
          case Code::MulStrided:
          case Code::MulIndexed:
            a.kind = Kind::Mul;
            break;
          case Code::Axpy:
            a.kind = Kind::Axpy;
            break;
          default:
            a.kind = Kind::Scale;
            break;
        }
        const auto rows =
            rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        std::uint32_t wbase = 0;
        std::uint32_t ngroups = 0;
        ok = window(rows, kMaxDstGroups, wbase, ngroups);
        if (ok) {
          fill_mask(rows, wbase, ngroups);
          a.off_a = w.off_a + wbase;
          a.off_b = w.off_b + wbase;
          a.off_dst = w.off_dst + wbase;
        }
        break;
      }
      case Code::ScatterContig:
      case Code::ScatterStrided:
      case Code::ScatterIndexed: {
        a.kind = Kind::Const;
        const auto rows =
            rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        std::uint32_t wbase = 0;
        std::uint32_t ngroups = 0;
        ok = window(rows, kMaxDstGroups, wbase, ngroups);
        if (ok) {
          fill_mask(rows, wbase, ngroups);
          a.off_dst = w.off_dst + wbase;
          off[1] = static_cast<std::uint32_t>(s.lane_values.size());
          s.lane_values.resize(off[1] + ngroups * 8, 0.0f);
          for (std::uint32_t k = 0; k < w.count; ++k) {
            s.lane_values[off[1] + (rows[k] - wbase)] = w.values[k];
          }
        }
        break;
      }
      case Code::GatherContig:
      case Code::GatherStrided:
      case Code::GatherIndexed:
      case Code::GatherStaged:
      case Code::MoveContig:
      case Code::MoveStrided:
      case Code::MoveIndexed: {
        a.kind = Kind::Permute;
        const bool is_move = w.code == Code::MoveContig ||
                             w.code == Code::MoveStrided ||
                             w.code == Code::MoveIndexed;
        // Gathers write rows 0..count-1 of the destination column of
        // the same block; moves write the rows_b pattern of the peer
        // block. Sources are the rows_a pattern either way. The whole
        // source window is pre-loaded before any store, which subsumes
        // the GatherStaged / overlapping-move scratch staging.
        const auto src_rows =
            rows_of(w.rows_a, w.start, w.stride, w.count, rows_buf);
        const auto dst_rows =
            is_move ? rows_of(w.rows_b, w.start_b, w.stride_b, w.count,
                              rows_buf2)
                    : rows_of(nullptr, 0, 1, w.count, rows_buf2);
        if (is_move) {
          a.peer_group = w.peer_group;
          a.face = w.face;
        }
        std::uint32_t sbase = 0;
        std::uint32_t sgroups = 0;
        std::uint32_t dbase = 0;
        std::uint32_t dgroups = 0;
        ok = window(src_rows, kMaxSrcGroups, sbase, sgroups) &&
             window(dst_rows, kMaxDstGroups, dbase, dgroups);
        if (ok) {
          fill_mask(dst_rows, dbase, dgroups);
          a.wgroups = static_cast<std::uint16_t>(sgroups);
          a.off_a = w.off_a + sbase;
          a.off_dst = w.off_dst + dbase;
          off[2] = static_cast<std::uint32_t>(s.lane_perm.size());
          s.lane_perm.resize(off[2] + dgroups * 8, 0);
          for (std::uint32_t k = 0; k < w.count; ++k) {
            s.lane_perm[off[2] + (dst_rows[k] - dbase)] =
                static_cast<std::int32_t>(src_rows[k] - sbase);
          }
        }
        break;
      }
    }

    if (!ok) {
      a = AvxOp{};
      a.kind = Kind::Fallback;
      a.fallback_idx = wi;
      off = {kNone, kNone, kNone};
    }
    s.avx.ops.push_back(a);
    offs.push_back(off);
  }

  for (std::size_t i = 0; i < s.avx.ops.size(); ++i) {
    AvxOp& a = s.avx.ops[i];
    if (offs[i][0] != kNone) {
      a.mask = s.lane_mask.data() + offs[i][0];
    }
    if (offs[i][1] != kNone) {
      a.values = s.lane_values.data() + offs[i][1];
    }
    if (offs[i][2] != kNone) {
      a.perm = s.lane_perm.data() + offs[i][2];
    }
  }
}

template <typename Fn>
void WordPlan::for_class_runs(std::span<const mesh::ElementId> elems,
                              Fn&& fn) const {
  std::size_t i = 0;
  while (i < elems.size()) {
    const std::uint32_t cls = class_of_[elems[i]];
    std::size_t j = i + 1;
    while (j < elems.size() && class_of_[elems[j]] == cls) {
      ++j;
    }
    fn(elems.subspan(i, j - i), classes_[cls]);
    i = j;
  }
}

void WordPlan::run_volume(const BlockResolver& blocks,
                          std::span<const mesh::ElementId> elems) const {
  for_class_runs(elems, [&](std::span<const mesh::ElementId> run,
                            const ClassStreams& cs) {
    run_stream(blocks, run, cs.volume);
  });
}

void WordPlan::run_flux_group(const BlockResolver& blocks,
                              std::span<const mesh::ElementId> elems,
                              FaceGroup group) const {
  for_class_runs(elems, [&](std::span<const mesh::ElementId> run,
                            const ClassStreams& cs) {
    run_stream(blocks, run, cs.flux[static_cast<std::size_t>(group)]);
  });
}

void WordPlan::run_integration(const BlockResolver& blocks,
                               std::span<const mesh::ElementId> elems,
                               const WordStream& stage) const {
  // Integration is class-independent (one stream per RK stage), so the
  // whole range is one run.
  run_stream(blocks, elems, stage);
}

const WordPlan::WordStream& WordPlan::integration(int stage, float dt) {
  const auto key = std::make_pair(stage, std::bit_cast<std::uint32_t>(dt));
  const auto it = integration_.find(key);
  if (it != integration_.end()) {
    return it->second;
  }
  return integration_.emplace(key, compile(plan_.integration(stage, dt)))
      .first->second;
}

namespace {

/// The op-major hot loop, split out of run_stream so target cloning can
/// compile an AVX2 body (resolved once per process through an ifunc)
/// while the library itself stays baseline x86-64. All WAVEPIM_IVDEP
/// loops below touch provably dependence-free index sets — compile()
/// routes every shape that could overlap partially to the staged or
/// scalar-order indexed kernels.
WAVEPIM_TARGET_CLONES
void exec_ops(std::span<const WordPlan::WordOp> ops,
              const BlockResolver& blocks, const ExecutionPlan& plan,
              std::span<const mesh::ElementId> elems, float* const* ptrs,
              std::uint32_t num_groups) {
  using WordOp = WordPlan::WordOp;
  const std::size_t n = elems.size();

  // Move sources may sit in a neighbour element's block (face >= 0).
  const auto move_src = [&](const WordOp& op, std::size_t i) -> const float* {
    if (op.face < 0) {
      return ptrs[i * num_groups + op.group];
    }
    const std::uint32_t nb =
        plan.neighbor_bases(elems[i])[static_cast<std::size_t>(op.face)];
    return blocks(nb + op.group).words().data();
  };

  for (const WordOp& op : ops) {
    switch (op.code) {
      case Code::ScatterContig:
        for (std::size_t i = 0; i < n; ++i) {
          float* d = ptrs[i * num_groups + op.group] + op.off_dst + op.start;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k] = op.values[k];
          }
        }
        break;
      case Code::ScatterStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* d = ptrs[i * num_groups + op.group] + op.off_dst + op.start;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k * op.stride] = op.values[k];
          }
        }
        break;
      case Code::ScatterIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          pim::word::scatter(ptrs[i * num_groups + op.group] + op.off_dst,
                             op.rows_a, op.values, op.count);
        }
        break;
      case Code::GatherContig:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          float* d = w + op.off_dst;
          const float* s = w + op.off_a + op.start;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k] = s[k];
          }
        }
        break;
      case Code::GatherStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          float* d = w + op.off_dst;
          const float* s = w + op.off_a + op.start;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k] = s[k * op.stride];
          }
        }
        break;
      case Code::GatherIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::gather(w + op.off_dst, w + op.off_a, op.rows_a,
                            op.count);
        }
        break;
      case Code::GatherStaged: {
        thread_local std::array<float, kRows> scratch;
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::gather_in_place(w + op.off_dst, op.rows_a, op.count,
                                     scratch.data());
        }
        break;
      }
      case Code::Add:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::add(w + op.off_dst + op.start, w + op.off_a + op.start,
                         w + op.off_b + op.start, op.count);
        }
        break;
      case Code::Sub:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::sub(w + op.off_dst + op.start, w + op.off_a + op.start,
                         w + op.off_b + op.start, op.count);
        }
        break;
      case Code::Mul:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul(w + op.off_dst + op.start, w + op.off_a + op.start,
                         w + op.off_b + op.start, op.count);
        }
        break;
      case Code::AddStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::add_strided(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.start, op.stride, op.count);
        }
        break;
      case Code::SubStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::sub_strided(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.start, op.stride, op.count);
        }
        break;
      case Code::MulStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul_strided(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.start, op.stride, op.count);
        }
        break;
      case Code::AddIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::add_indexed(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.rows_a, op.count);
        }
        break;
      case Code::SubIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::sub_indexed(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.rows_a, op.count);
        }
        break;
      case Code::MulIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::mul_indexed(w + op.off_dst, w + op.off_a, w + op.off_b,
                                 op.rows_a, op.count);
        }
        break;
      case Code::Scale:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale(w + op.off_dst + op.start, w + op.off_a + op.start,
                           op.imm, op.count);
        }
        break;
      case Code::ScaleStrided:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale_strided(w + op.off_dst, w + op.off_a, op.imm,
                                   op.start, op.stride, op.count);
        }
        break;
      case Code::ScaleIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::scale_indexed(w + op.off_dst, w + op.off_a, op.imm,
                                   op.rows_a, op.count);
        }
        break;
      case Code::Axpy:
        for (std::size_t i = 0; i < n; ++i) {
          float* w = ptrs[i * num_groups + op.group];
          pim::word::axpy(w + op.off_dst, w + op.off_a, op.imm, op.imm2,
                          op.count);
        }
        break;
      case Code::MoveContig:
        for (std::size_t i = 0; i < n; ++i) {
          const float* s = move_src(op, i) + op.off_a + op.start;
          float* d =
              ptrs[i * num_groups + op.peer_group] + op.off_dst + op.start_b;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[k] = s[k];
          }
        }
        break;
      case Code::MoveStrided:
        for (std::size_t i = 0; i < n; ++i) {
          const float* s = move_src(op, i) + op.off_a;
          float* d = ptrs[i * num_groups + op.peer_group] + op.off_dst;
          WAVEPIM_IVDEP
          for (std::uint32_t k = 0; k < op.count; ++k) {
            d[op.start_b + k * op.stride_b] = s[op.start + k * op.stride];
          }
        }
        break;
      case Code::MoveIndexed:
        for (std::size_t i = 0; i < n; ++i) {
          pim::word::move(
              ptrs[i * num_groups + op.peer_group] + op.off_dst, op.rows_b,
              move_src(op, i) + op.off_a, op.rows_a, op.count);
        }
        break;
    }
  }
}

/// AVX2 engine escape hatch: executes one generic WordOp of the mirror
/// stream, in stream position, through the scalar kernels.
void run_fallback_op(const wordavx::ExecCtx& ctx, std::uint32_t idx,
                     const void* fallback_ctx) {
  const auto* stream = static_cast<const WordPlan::WordStream*>(fallback_ctx);
  exec_ops(std::span<const WordPlan::WordOp>(&stream->ops[idx], 1),
           *ctx.blocks, *ctx.plan, ctx.elems, ctx.ptrs, ctx.num_groups);
}

}  // namespace

void WordPlan::run_stream(const BlockResolver& blocks,
                          std::span<const mesh::ElementId> elems,
                          const WordStream& stream) const {
  // Per-run block storage pointers, resolved once: the op loops index
  // ptrs[element * num_groups + group] with no further indirection.
  // Thread-local and capacity-retaining, so steady-state steps allocate
  // nothing.
  thread_local std::vector<float*> ptr_tls;
  const std::size_t n = elems.size();
  const std::uint32_t num_groups = num_groups_;
  ptr_tls.resize(n * num_groups);
  float** const ptrs = ptr_tls.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t base = base_of_[elems[i]];
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      ptrs[i * num_groups + g] = blocks(base + g).words().data();
    }
  }

  if (use_avx2_) {
    wordavx::ExecCtx ctx;
    ctx.blocks = &blocks;
    ctx.plan = &plan_;
    ctx.elems = elems;
    ctx.ptrs = ptrs;
    ctx.num_groups = num_groups;
    ctx.fallback = &run_fallback_op;
    ctx.fallback_ctx = &stream;
    wordavx::exec(stream.avx, ctx);
  } else {
    exec_ops(stream.ops, blocks, plan_, elems, ptrs, num_groups);
  }

  // The batched per-block cost aggregates, per element in range order —
  // the same values the compiled tier applies after its per-element op
  // loop (elements own disjoint blocks, so cross-element order is
  // ledger-irrelevant).
  const auto& charges = *stream.group_cost;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t base = base_of_[elems[i]];
    for (const auto& [group, cost] : charges) {
      blocks(base + group).charge(cost);
    }
  }
}

}  // namespace wavepim::mapping
