#pragma once

#include <cstdint>
#include <string>

#include "mapping/layout.h"
#include "pim/params.h"

namespace wavepim::mapping {

/// The problem instance being mapped.
struct Problem {
  dg::ProblemKind kind = dg::ProblemKind::Acoustic;
  int refinement_level = 4;
  int n1d = 8;  ///< 8 -> the paper's 512-node elements

  [[nodiscard]] std::uint64_t num_elements() const {
    const std::uint64_t d = 1ull << refinement_level;
    return d * d * d;
  }
  [[nodiscard]] std::uint64_t nodes_per_element() const {
    return static_cast<std::uint64_t>(n1d) * n1d * n1d;
  }
  [[nodiscard]] std::uint32_t num_vars() const {
    return dg::is_elastic(kind) ? 9 : 4;
  }
  [[nodiscard]] std::string name() const;
};

/// The paper's six evaluation benchmarks (Table 6).
std::array<Problem, 6> paper_benchmarks();

/// Chosen implementation configuration for (problem, chip) — one cell of
/// the paper's Table 5.
struct MappingConfig {
  ExpansionMode expansion = ExpansionMode::None;
  bool batched = false;
  std::uint32_t num_batches = 1;
  std::uint64_t elements_per_batch = 0;
  std::uint32_t slices_per_batch = 0;  ///< flux batching granularity (Fig. 7)

  /// Table 5 label: "N", "Ep", "Er", "Er&Ep", with "&B" appended when
  /// batching is required.
  [[nodiscard]] std::string label() const;
};

/// Reproduces the Table 5 decision: pick the most-expanded applicable mode
/// that fits the chip without batching; otherwise batch at the least-
/// expanded mode. Batches are whole Y-slices so the Fig. 7 flux scheme
/// applies. Throws CapacityError if even one slice cannot fit.
MappingConfig choose_config(const Problem& problem,
                            const pim::ChipConfig& chip);

}  // namespace wavepim::mapping
