#include "common/trace_report.h"

#include <cstdio>

#include "common/units.h"

namespace wavepim {

namespace {

[[nodiscard]] std::string ns_to_text(double ns) {
  return format_time(Seconds(ns * 1e-9));
}

}  // namespace

TextTable trace_summary_table(const trace::Summary& summary) {
  TextTable table({"Span", "Count", "Total", "Mean", "p50", "p99", "Share"});
  const double wall = static_cast<double>(summary.duration_ns());
  for (const auto& s : summary.spans) {
    const double share =
        wall > 0.0 ? 100.0 * static_cast<double>(s.total_ns) / wall : 0.0;
    char share_text[16];
    std::snprintf(share_text, sizeof(share_text), "%.1f%%", share);
    table.add_row({s.name, std::to_string(s.count),
                   ns_to_text(static_cast<double>(s.total_ns)),
                   ns_to_text(s.mean_ns()),
                   ns_to_text(static_cast<double>(s.p50_ns)),
                   ns_to_text(static_cast<double>(s.p99_ns)), share_text});
  }
  for (const auto& c : summary.counters) {
    table.add_row({c.name, std::to_string(c.samples), TextTable::num(c.sum),
                   TextTable::num(c.samples > 0
                                      ? c.sum / static_cast<double>(c.samples)
                                      : 0.0),
                   "-", "-", "-"});
  }
  return table;
}

void print_trace_summary(const trace::Summary& summary) {
  trace_summary_table(summary).print();
  std::printf("trace: %s wall, %llu dropped event(s)\n",
              ns_to_text(static_cast<double>(summary.duration_ns())).c_str(),
              static_cast<unsigned long long>(summary.dropped));
}

}  // namespace wavepim
