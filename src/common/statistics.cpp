#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace wavepim {

double mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double x : xs) {
    WAVEPIM_REQUIRE(x > 0.0, "geomean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double max_abs(std::span<const double> xs) {
  double m = 0.0;
  for (double x : xs) {
    m = std::max(m, std::fabs(x));
  }
  return m;
}

double rms(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x * x;
  }
  return std::sqrt(sum / static_cast<double>(xs.size()));
}

double relative_linf_error(std::span<const float> a, std::span<const float> b) {
  WAVEPIM_REQUIRE(a.size() == b.size(), "field size mismatch");
  double max_diff = 0.0;
  double max_ref = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(static_cast<double>(a[i]) - b[i]));
    max_ref = std::max(max_ref, std::fabs(static_cast<double>(b[i])));
  }
  return max_diff / std::max(1e-30, max_ref);
}

}  // namespace wavepim
