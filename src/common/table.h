#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace wavepim {

/// Minimal fixed-grid ASCII table used by the bench harness to print the
/// rows/series that correspond to the paper's tables and figures.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column-aligned, pipe-separated formatting.
  [[nodiscard]] std::string to_string() const;

  /// Renders as a compact GitHub-flavored-markdown table (no width
  /// padding, `| --- |` header rule) — what the CI tools emit into
  /// step summaries and PR comments.
  [[nodiscard]] std::string to_markdown() const;

  /// Prints to stdout.
  void print() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `digits` significant digits (bench convenience).
  static std::string num(double v, int digits = 4);
  /// Formats "12.3x"-style ratios.
  static std::string ratio(double v, int digits = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wavepim
