#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace wavepim {

/// Strongly-typed physical quantities used throughout the cost models.
///
/// The PIM, GPU and interconnect models pass times, energies and byte
/// counts across many module boundaries; strong types prevent the classic
/// "seconds where joules expected" class of bug at zero runtime cost.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.value_ / s);
  }
  /// Ratio of two like quantities is a plain number.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

struct SecondsTag {};
struct JoulesTag {};

/// Elapsed or modelled wall-clock time.
using Seconds = Quantity<SecondsTag>;
/// Modelled energy.
using Joules = Quantity<JoulesTag>;

/// Power = energy / time; kept as plain double watts for arithmetic ease.
constexpr double watts(Joules e, Seconds t) { return e.value() / t.value(); }
constexpr Joules energy_at(double watts, Seconds t) {
  return Joules(watts * t.value());
}

// Convenience literal-style constructors.
constexpr Seconds seconds(double v) { return Seconds(v); }
constexpr Seconds milliseconds(double v) { return Seconds(v * 1e-3); }
constexpr Seconds microseconds(double v) { return Seconds(v * 1e-6); }
constexpr Seconds nanoseconds(double v) { return Seconds(v * 1e-9); }
constexpr Joules joules(double v) { return Joules(v); }
constexpr Joules millijoules(double v) { return Joules(v * 1e-3); }
constexpr Joules picojoules(double v) { return Joules(v * 1e-12); }
constexpr Joules femtojoules(double v) { return Joules(v * 1e-15); }

/// Byte counts for memory-footprint and traffic accounting.
using Bytes = std::uint64_t;

constexpr Bytes kibibytes(Bytes v) { return v << 10; }
constexpr Bytes mebibytes(Bytes v) { return v << 20; }
constexpr Bytes gibibytes(Bytes v) { return v << 30; }

/// Human-readable formatting with an SI prefix, e.g. "3.21 us", "12.7 mJ".
std::string format_time(Seconds t);
std::string format_energy(Joules e);
std::string format_bytes(Bytes b);
std::string format_power(double watts);

}  // namespace wavepim
