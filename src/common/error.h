#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace wavepim {

/// Base class for all errors raised by the Wave-PIM library.
///
/// Every precondition / invariant violation inside the library throws a
/// subclass of `Error` so callers can distinguish library failures from
/// standard-library ones.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// Raised when an internal invariant fails (a library bug, not user error).
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Raised when a requested problem does not fit the selected hardware and
/// no batching/expansion plan can make it fit.
class CapacityError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] void throw_precondition(const char* expr, const std::string& msg,
                                     const std::source_location& loc);
[[noreturn]] void throw_invariant(const char* expr, const std::string& msg,
                                  const std::source_location& loc);

}  // namespace detail

}  // namespace wavepim

/// Check a user-facing precondition; throws wavepim::PreconditionError.
#define WAVEPIM_REQUIRE(expr, msg)                               \
  do {                                                           \
    if (!(expr)) {                                               \
      ::wavepim::detail::throw_precondition(                     \
          #expr, (msg), std::source_location::current());        \
    }                                                            \
  } while (false)

/// Check an internal invariant; throws wavepim::InvariantError.
#define WAVEPIM_ASSERT(expr, msg)                                \
  do {                                                           \
    if (!(expr)) {                                               \
      ::wavepim::detail::throw_invariant(                        \
          #expr, (msg), std::source_location::current());        \
    }                                                            \
  } while (false)
