#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/error.h"

namespace wavepim::json {

bool Value::as_bool() const {
  WAVEPIM_REQUIRE(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  WAVEPIM_REQUIRE(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  WAVEPIM_REQUIRE(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  WAVEPIM_REQUIRE(is_array(), "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  WAVEPIM_REQUIRE(is_object(), "JSON value is not an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::Number;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over the input view. Depth-limited so a
/// malicious/corrupt file cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    require(pos_ == text_.size(), "trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }
  void require(bool ok, const char* what) const {
    if (!ok) {
      fail(what);
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    require(!eof(), "unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect_literal(std::string_view word) {
    require(text_.substr(pos_, word.size()) == word, "invalid literal");
    pos_ += word.size();
  }

  Value parse_value(int depth) {
    require(depth < kMaxDepth, "nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value::make_string(parse_string());
      case 't':
        expect_literal("true");
        return Value::make_bool(true);
      case 'f':
        expect_literal("false");
        return Value::make_bool(false);
      case 'n':
        expect_literal("null");
        return Value::make_null();
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    take();  // '{'
    std::vector<std::pair<std::string, Value>> members;
    skip_ws();
    if (peek() == '}') {
      take();
      return Value::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      require(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_ws();
      require(take() == ':', "expected ':' after object key");
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == '}') {
        return Value::make_object(std::move(members));
      }
      require(c == ',', "expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    take();  // '['
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      take();
      return Value::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') {
        return Value::make_array(std::move(items));
      }
      require(c == ',', "expected ',' or ']' in array");
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    take();  // '"'
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            require(!eof() && take() == '\\' && take() == 'u',
                    "lone high surrogate");
            const std::uint32_t low = parse_hex4();
            require(low >= 0xDC00 && low <= 0xDFFF, "invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else {
            require(!(cp >= 0xDC00 && cp <= 0xDFFF), "lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && text_[pos_] == '-') {
      ++pos_;
    }
    while (!eof() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                      text_[pos_] == '+' || text_[pos_] == '-' ||
                      text_[pos_] == '.' || text_[pos_] == 'e' ||
                      text_[pos_] == 'E')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      fail("invalid number");
    }
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 passes through byte-wise
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  // Integers inside the exactly-representable range print without a
  // fraction; everything else uses %.17g, which round-trips any double.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_value(std::string& out, const Value& value, int indent,
                  int depth) {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };
  switch (value.kind()) {
    case Value::Kind::Null:
      out += "null";
      break;
    case Value::Kind::Bool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Kind::Number:
      append_number(out, value.as_number());
      break;
    case Value::Kind::String:
      append_escaped(out, value.as_string());
      break;
    case Value::Kind::Array: {
      const auto& items = value.as_array();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        append_value(out, items[i], indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Value::Kind::Object: {
      const auto& members = value.as_object();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        append_escaped(out, members[i].first);
        out += indent > 0 ? ": " : ":";
        append_value(out, members[i].second, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& value, int indent) {
  std::string out;
  append_value(out, value, indent, 0);
  return out;
}

}  // namespace wavepim::json
