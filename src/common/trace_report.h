#pragma once

#include "common/table.h"
#include "trace/export.h"

namespace wavepim {

/// Renders a trace summary as the repo's standard ASCII table: one row
/// per span name (count, total, mean, share of the trace's wall-clock
/// extent), followed by the counters. This is the human-readable
/// companion of the Chrome trace JSON the CLI writes with `--trace`.
[[nodiscard]] TextTable trace_summary_table(const trace::Summary& summary);

/// Prints the summary table plus a one-line footer (duration, dropped
/// events) to stdout.
void print_trace_summary(const trace::Summary& summary);

}  // namespace wavepim
