#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace wavepim {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  WAVEPIM_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  WAVEPIM_REQUIRE(row.size() == header_.size(),
                  "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto rule = [&] {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "|";
    }
    os << '\n';
  };

  emit(header_);
  rule();
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

std::string TextTable::to_markdown() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (const auto& cell : row) {
      os << ' ' << cell << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << " --- |";
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string TextTable::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string TextTable::ratio(double v, int digits) {
  return num(v, digits) + "x";
}

}  // namespace wavepim
