#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wavepim::json {

/// Minimal JSON document model: just enough for the repo's tooling (the
/// trace checker and the bench-baseline comparer) to consume the Chrome
/// trace and google-benchmark reports without an external dependency.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw PreconditionError on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& as_object()
      const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses a complete JSON document (trailing non-whitespace is an error).
/// Throws wavepim::Error with a byte offset on malformed input. Supports
/// the full grammar incl. \uXXXX escapes (surrogate pairs combined).
[[nodiscard]] Value parse(std::string_view text);

/// Serialises a document. Deterministic by construction: objects keep
/// their insertion order, numbers print as integers when exactly
/// integral (within the 2^53-safe range) and as shortest-round-trip
/// doubles otherwise — the paper-eval baseline diff depends on
/// serialise(parse(x)) being stable across runs. `indent` > 0 pretty-
/// prints with that many spaces per level; 0 emits one line.
[[nodiscard]] std::string dump(const Value& value, int indent = 0);

}  // namespace wavepim::json
