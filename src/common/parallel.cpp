#include "common/parallel.h"

#include <algorithm>
#include <atomic>

namespace wavepim {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  // Inline fast path: nothing to parallelise, or parallelism wouldn't pay.
  if (n == 0) {
    return;
  }
  const std::size_t workers = size();
  if (workers <= 1 || n < 2 * workers) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  const std::size_t chunks = std::min(n, 4 * workers);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    enqueue([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace wavepim
