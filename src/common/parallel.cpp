#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim {

namespace {

/// True while the current thread is a pool worker (any pool). Nested
/// parallel_for calls detect it and run inline — see the header.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  trace::Span span("pool.parallel_for", static_cast<double>(n));
  const std::size_t workers = size();
  // Inline paths: parallelism wouldn't pay, or we *are* a pool worker
  // (fanning out from inside a worker can deadlock the pool — every
  // worker could end up blocked on chunks only blocked workers would run).
  if (workers <= 1 || n < 2 * workers || t_in_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  const std::size_t chunks = std::min(n, 4 * workers);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  // First exception thrown by any chunk; rethrown to the caller after
  // every chunk has finished (the chunks capture this frame by
  // reference, so unwinding early would leave dangling references).
  std::exception_ptr error;
  std::mutex error_mutex;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    enqueue([&, begin, end] {
      trace::Span chunk_span("pool.chunk",
                             static_cast<double>(end - begin));
      try {
        for (std::size_t i = begin; i < end; ++i) {
          fn(i);
        }
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }

  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(
        lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

namespace {

/// Worker count requested via set_global_threads; 0 = no request.
std::atomic<std::size_t> g_requested_threads{0};
/// Latched once the global pool has been constructed.
std::atomic<bool> g_global_created{false};

}  // namespace

std::size_t ThreadPool::parse_thread_count(const char* value) {
  if (value == nullptr || *value == '\0') {
    return 0;
  }
  // Digits only: strtoull would silently accept "-1" (wrapping to a huge
  // count) and whitespace.
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return 0;
    }
  }
  const unsigned long long n = std::strtoull(value, nullptr, 10);
  // A count beyond any plausible machine is a typo, not a request.
  constexpr unsigned long long kMaxThreads = 4096;
  return n <= kMaxThreads ? static_cast<std::size_t>(n) : 0;
}

void ThreadPool::set_global_threads(std::size_t num_threads) {
  WAVEPIM_REQUIRE(!g_global_created.load(std::memory_order_acquire),
                  "the global thread pool already exists; set the worker "
                  "count before its first use");
  g_requested_threads.store(num_threads, std::memory_order_release);
}

ThreadPool& ThreadPool::global() {
  // Magic static: concurrent first callers block until one thread finishes
  // construction, so the pool is built exactly once.
  static ThreadPool pool([] {
    g_global_created.store(true, std::memory_order_release);
    const std::size_t requested =
        g_requested_threads.load(std::memory_order_acquire);
    if (requested != 0) {
      return requested;
    }
    return parse_thread_count(std::getenv("WAVEPIM_NUM_THREADS"));
  }());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace wavepim
