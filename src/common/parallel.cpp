#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/error.h"

namespace wavepim {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  // Inline fast path: nothing to parallelise, or parallelism wouldn't pay.
  if (n == 0) {
    return;
  }
  const std::size_t workers = size();
  if (workers <= 1 || n < 2 * workers) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  const std::size_t chunks = std::min(n, 4 * workers);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    enqueue([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

namespace {

/// Worker count requested via set_global_threads; 0 = no request.
std::atomic<std::size_t> g_requested_threads{0};
/// Latched once the global pool has been constructed.
std::atomic<bool> g_global_created{false};

}  // namespace

std::size_t ThreadPool::parse_thread_count(const char* value) {
  if (value == nullptr || *value == '\0') {
    return 0;
  }
  // Digits only: strtoull would silently accept "-1" (wrapping to a huge
  // count) and whitespace.
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return 0;
    }
  }
  const unsigned long long n = std::strtoull(value, nullptr, 10);
  // A count beyond any plausible machine is a typo, not a request.
  constexpr unsigned long long kMaxThreads = 4096;
  return n <= kMaxThreads ? static_cast<std::size_t>(n) : 0;
}

void ThreadPool::set_global_threads(std::size_t num_threads) {
  WAVEPIM_REQUIRE(!g_global_created.load(std::memory_order_acquire),
                  "the global thread pool already exists; set the worker "
                  "count before its first use");
  g_requested_threads.store(num_threads, std::memory_order_release);
}

ThreadPool& ThreadPool::global() {
  // Magic static: concurrent first callers block until one thread finishes
  // construction, so the pool is built exactly once.
  static ThreadPool pool([] {
    g_global_created.store(true, std::memory_order_release);
    const std::size_t requested =
        g_requested_threads.load(std::memory_order_acquire);
    if (requested != 0) {
      return requested;
    }
    return parse_thread_count(std::getenv("WAVEPIM_NUM_THREADS"));
  }());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace wavepim
