#pragma once

#include <cstdint>

namespace wavepim {

/// SplitMix64 — a tiny, deterministic PRNG used for test fixtures and
/// synthetic workloads. Deterministic across platforms (unlike
/// std::default_random_engine distributions), which keeps property tests
/// reproducible.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  constexpr float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t next_below(std::uint64_t n) {
    return next_u64() % n;
  }

 private:
  std::uint64_t state_;
};

}  // namespace wavepim
