#pragma once

#include <span>

namespace wavepim {

/// Numeric summaries used by benches and tests when comparing series
/// (e.g. speedups across benchmarks, field errors across nodes).

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; requires all elements > 0. Used for speedup averages.
double geomean(std::span<const double> xs);

/// Largest absolute value; 0 for an empty span.
double max_abs(std::span<const double> xs);

/// Root-mean-square of the values.
double rms(std::span<const double> xs);

/// max_i |a[i] - b[i]| / max(1e-30, max_i |b[i]|) — a scale-free field
/// comparison used to validate the PIM functional execution against the
/// CPU solver.
double relative_linf_error(std::span<const float> a, std::span<const float> b);

}  // namespace wavepim
