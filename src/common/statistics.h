#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace wavepim {

/// Numeric summaries used by benches and tests when comparing series
/// (e.g. speedups across benchmarks, field errors across nodes).

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; requires all elements > 0. Used for speedup averages.
double geomean(std::span<const double> xs);

/// Largest absolute value; 0 for an empty span.
double max_abs(std::span<const double> xs);

/// Root-mean-square of the values.
double rms(std::span<const double> xs);

/// max_i |a[i] - b[i]| / max(1e-30, max_i |b[i]|) — a scale-free field
/// comparison used to validate the PIM functional execution against the
/// CPU solver.
double relative_linf_error(std::span<const float> a, std::span<const float> b);

/// Nearest-rank percentile: the ceil(p/100 * N)-th smallest value
/// (1-indexed), i.e. an actual sample, never an interpolation — p50 of
/// {1, 2, 3, 4} is 2, p99 is 4. `p` is clamped to [0, 100]; 0 for an
/// empty span. Shared by the trace summary's span p50/p99 and the
/// service layer's job-latency report. Header-inline: wavepim_trace
/// uses it but wavepim_common links *on top of* wavepim_trace.
inline double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::min(100.0, std::max(0.0, p));
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank > 0 ? rank - 1 : 0];
}

}  // namespace wavepim
