#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wavepim {

/// A small fixed-size thread pool.
///
/// The CPU reference dG solver and the PIM functional simulator use it for
/// element-parallel loops.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n), split into contiguous chunks across the
  /// pool, and blocks until all iterations complete. Runs inline when the
  /// pool has a single worker or `n` is small.
  ///
  /// Reentrancy: a `parallel_for` issued from inside a pool worker (any
  /// pool's) runs inline on that worker. Nested fan-outs would otherwise
  /// deadlock once every worker blocks waiting on chunks that only the
  /// blocked workers could run.
  ///
  /// Exceptions: if `fn` throws, the loop still completes the chunks
  /// already enqueued (their captured state must stay valid), then
  /// rethrows one of the captured exceptions — the first one observed —
  /// to the caller. A chunk stops at its first throwing iteration, so
  /// some iterations may not run. The pool itself stays usable.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Global pool shared by library components that do not take an explicit
  /// pool. Created on first use (thread-safe: C++ magic-static guarantees
  /// exactly one construction even under concurrent first access) and sized
  /// from, in priority order: `set_global_threads`, the
  /// `WAVEPIM_NUM_THREADS` environment variable, the hardware.
  static ThreadPool& global();

  /// Requests a worker count for the global pool. Must be called before the
  /// first `global()` use (e.g. at tool startup when parsing `--threads`);
  /// throws PreconditionError once the pool exists, since live workers
  /// cannot be resized.
  static void set_global_threads(std::size_t num_threads);

  /// Parses a `WAVEPIM_NUM_THREADS`-style value: a positive integer maps to
  /// itself, anything else (null, empty, junk, zero) to 0 — "use the
  /// hardware". Exposed for testability; `global()` applies it to the
  /// actual environment variable.
  [[nodiscard]] static std::size_t parse_thread_count(const char* value);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace wavepim
