#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wavepim {

/// A small fixed-size thread pool.
///
/// The CPU reference dG solver and the PIM functional simulator use it for
/// element-parallel loops. Tasks must not throw; exceptions escaping a task
/// terminate the program (by design — kernels are noexcept by contract).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n), split into contiguous chunks across the
  /// pool, and blocks until all iterations complete. Runs inline when the
  /// pool has a single worker or `n` is small.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Global pool shared by library components that do not take an explicit
  /// pool. Sized to the hardware on first use.
  static ThreadPool& global();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace wavepim
