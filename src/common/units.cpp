#include "common/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace wavepim {

namespace {

struct Scale {
  double factor;
  const char* suffix;
};

std::string format_scaled(double v, const char* unit) {
  static constexpr std::array<Scale, 7> kScales = {{
      {1e9, "G"},
      {1e6, "M"},
      {1e3, "k"},
      {1.0, ""},
      {1e-3, "m"},
      {1e-6, "u"},
      {1e-9, "n"},
  }};
  char buf[64];
  const double mag = std::fabs(v);
  if (mag == 0.0) {
    std::snprintf(buf, sizeof(buf), "0 %s", unit);
    return buf;
  }
  for (const auto& s : kScales) {
    if (mag >= s.factor) {
      std::snprintf(buf, sizeof(buf), "%.3g %s%s", v / s.factor, s.suffix,
                    unit);
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "%.3g p%s", v * 1e12, unit);
  return buf;
}

}  // namespace

std::string format_time(Seconds t) { return format_scaled(t.value(), "s"); }
std::string format_energy(Joules e) { return format_scaled(e.value(), "J"); }
std::string format_power(double w) { return format_scaled(w, "W"); }

std::string format_bytes(Bytes b) {
  char buf[64];
  const double v = static_cast<double>(b);
  if (b >= gibibytes(1)) {
    std::snprintf(buf, sizeof(buf), "%.3g GiB", v / static_cast<double>(gibibytes(1)));
  } else if (b >= mebibytes(1)) {
    std::snprintf(buf, sizeof(buf), "%.3g MiB", v / static_cast<double>(mebibytes(1)));
  } else if (b >= kibibytes(1)) {
    std::snprintf(buf, sizeof(buf), "%.3g KiB", v / static_cast<double>(kibibytes(1)));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

}  // namespace wavepim
