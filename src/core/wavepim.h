#pragma once

#include <string>
#include <vector>

#include "gpumodel/baseline.h"
#include "mapping/estimator.h"
#include "mapping/simulation.h"
#include "pim/params.h"

namespace wavepim::core {

/// One row of a Fig. 11 / Fig. 12 style comparison.
struct ComparisonRow {
  std::string platform;
  Seconds step_time;
  Seconds total_time;
  Joules total_energy;
  /// Relative to the Unfused GTX 1080Ti baseline (the paper's reference).
  double speedup = 0.0;
  double energy_saving = 0.0;
  /// Normalised time/energy (baseline = 1.0), the units Fig. 11/12 plot.
  double normalized_time = 0.0;
  double normalized_energy = 0.0;
  /// For PIM rows: the paper's peak-throughput methodology estimate.
  Seconds step_time_peak_method;
  bool is_pim = false;
};

/// Options for projecting a PIM platform.
struct PimOptions {
  pim::Topology topology = pim::Topology::HTree;
  pim::ProcessScaling scaling = pim::ProcessScaling::node_28nm();
  mapping::Estimator::Options estimator{};
};

/// The Wave-PIM system facade: projects wave-simulation benchmarks onto
/// PIM chips and the GPU/CPU baselines, producing the comparisons the
/// paper's evaluation section reports.
class System {
 public:
  /// Projects a problem on a PIM chip over `steps` time steps.
  static gpumodel::PlatformEstimate project_pim(
      const mapping::Problem& problem, const pim::ChipConfig& chip,
      std::uint64_t steps, const PimOptions& options = {});

  /// Full evaluation grid for one benchmark: 3 GPUs x {unfused, fused}
  /// plus 4 PIM capacities x {28 nm, 12 nm}, normalised to
  /// Unfused-1080Ti (the paper's Figs. 11-12 layout).
  static std::vector<ComparisonRow> compare_all(
      const mapping::Problem& problem, std::uint64_t steps,
      pim::Topology topology = pim::Topology::HTree);

  /// Geometric-mean speedup/energy-saving of the PIM rows of
  /// `compare_all` grids across several problems (the paper's "average
  /// of 41.98x speedup and 12.66x energy savings" summary).
  struct Summary {
    double mean_speedup = 0.0;
    double mean_energy_saving = 0.0;
  };
  static Summary summarize_pim(const std::vector<std::vector<ComparisonRow>>&
                                   grids,
                               const std::string& platform_name);
};

}  // namespace wavepim::core
