#include "core/report.h"

#include <sstream>

#include "common/error.h"

namespace wavepim::core {

namespace {

void check_grids(const std::vector<std::string>& benchmarks,
                 const std::vector<std::vector<ComparisonRow>>& grids) {
  WAVEPIM_REQUIRE(!grids.empty() && benchmarks.size() == grids.size(),
                  "one grid per benchmark required");
  for (const auto& grid : grids) {
    WAVEPIM_REQUIRE(grid.size() == grids[0].size(),
                    "grids must share the platform list");
  }
}

double cell(const ComparisonRow& row, bool energy) {
  return energy ? row.normalized_energy : row.normalized_time;
}

}  // namespace

std::string to_csv(const std::vector<std::string>& benchmarks,
                   const std::vector<std::vector<ComparisonRow>>& grids,
                   bool energy) {
  check_grids(benchmarks, grids);
  std::ostringstream os;
  os << "platform";
  for (const auto& b : benchmarks) {
    os << ',' << b;
  }
  os << '\n';
  for (std::size_t r = 0; r < grids[0].size(); ++r) {
    os << grids[0][r].platform;
    for (const auto& grid : grids) {
      os << ',' << cell(grid[r], energy);
    }
    os << '\n';
  }
  return os.str();
}

std::string to_markdown(const std::vector<std::string>& benchmarks,
                        const std::vector<std::vector<ComparisonRow>>& grids,
                        bool energy) {
  check_grids(benchmarks, grids);
  std::ostringstream os;
  os << "| platform |";
  for (const auto& b : benchmarks) {
    os << ' ' << b << " |";
  }
  os << "\n|---|";
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    os << "---|";
  }
  os << '\n';
  for (std::size_t r = 0; r < grids[0].size(); ++r) {
    os << "| " << grids[0][r].platform << " |";
    char buf[32];
    for (const auto& grid : grids) {
      std::snprintf(buf, sizeof(buf), " %.3g |", cell(grid[r], energy));
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

EnergyBreakdown breakdown_energy(const mapping::Problem& problem,
                                 const pim::ChipConfig& chip) {
  mapping::Estimator estimator(problem, chip);
  const auto& est = estimator.estimate();
  EnergyBreakdown b;
  b.platform = chip.name;
  b.total = est.step_energy;
  const double total = est.step_energy.value();
  WAVEPIM_ASSERT(total > 0.0, "step energy must be positive");
  b.static_fraction = est.static_energy.value() / total;
  b.dynamic_fraction = est.dynamic_energy.value() / total;
  b.network_fraction = est.network_energy.value() / total;
  b.host_fraction = est.host_energy.value() / total;
  b.hbm_fraction = est.hbm_energy.value() / total;
  return b;
}

}  // namespace wavepim::core
