#include "core/wavepim.h"

#include <cmath>

#include "common/error.h"
#include "common/statistics.h"
#include "trace/trace.h"

namespace wavepim::core {

gpumodel::PlatformEstimate System::project_pim(const mapping::Problem& problem,
                                               const pim::ChipConfig& chip,
                                               std::uint64_t steps,
                                               const PimOptions& options) {
  trace::Span span("system.project_pim");
  pim::ChipConfig configured = chip;
  configured.topology = options.topology;
  mapping::Estimator estimator(problem, configured, options.estimator);
  const auto cost = estimator.run_cost(steps);

  gpumodel::PlatformEstimate est;
  est.platform = chip.name + (options.scaling.speedup > 1.0 ? "-12nm"
                                                            : "-28nm");
  est.total_time = cost.time / options.scaling.speedup;
  est.step_time = est.total_time / static_cast<double>(steps);
  est.total_energy = cost.energy / options.scaling.energy_saving;
  const auto ops = dg::count_problem_ops(problem.kind, problem.num_elements(),
                                         problem.n1d);
  est.achieved_flops = static_cast<double>(ops.total().flops) * 5.0 *
                       static_cast<double>(steps) / est.total_time.value();
  return est;
}

std::vector<ComparisonRow> System::compare_all(const mapping::Problem& problem,
                                               std::uint64_t steps,
                                               pim::Topology topology) {
  trace::Span span("system.compare_all");
  std::vector<ComparisonRow> rows;

  auto add_gpu = [&](const gpumodel::GpuSpec& gpu,
                     gpumodel::GpuImplementation impl) {
    const auto est = gpumodel::estimate_gpu(problem, gpu, impl, steps);
    ComparisonRow row;
    row.platform = est.platform;
    row.step_time = est.step_time;
    row.total_time = est.total_time;
    row.total_energy = est.total_energy;
    rows.push_back(row);
  };
  for (const auto& gpu : gpumodel::paper_gpus()) {
    add_gpu(gpu, gpumodel::GpuImplementation::Unfused);
  }
  for (const auto& gpu : gpumodel::paper_gpus()) {
    add_gpu(gpu, gpumodel::GpuImplementation::Fused);
  }

  for (const auto scaling : {pim::ProcessScaling::node_28nm(),
                             pim::ProcessScaling::node_12nm()}) {
    for (const auto& chip : pim::standard_chips(topology)) {
      PimOptions options;
      options.topology = topology;
      options.scaling = scaling;
      const auto est = project_pim(problem, chip, steps, options);

      // The paper-methodology series rides along for comparison.
      pim::ChipConfig configured = chip;
      configured.topology = topology;
      mapping::Estimator estimator(problem, configured, {});
      ComparisonRow row;
      row.platform = est.platform;
      row.step_time = est.step_time;
      row.total_time = est.total_time;
      row.total_energy = est.total_energy;
      row.step_time_peak_method =
          estimator.estimate().step_time_peak_method / scaling.speedup;
      row.is_pim = true;
      rows.push_back(row);
    }
  }

  // Normalise to the Unfused GTX 1080Ti (row 0).
  WAVEPIM_ASSERT(!rows.empty() && rows[0].platform.find("1080Ti") !=
                                      std::string::npos,
                 "baseline row must be Unfused-1080Ti");
  const double t0 = rows[0].total_time.value();
  const double e0 = rows[0].total_energy.value();
  for (auto& row : rows) {
    row.speedup = t0 / row.total_time.value();
    row.energy_saving = e0 / row.total_energy.value();
    row.normalized_time = row.total_time.value() / t0;
    row.normalized_energy = row.total_energy.value() / e0;
  }
  return rows;
}

System::Summary System::summarize_pim(
    const std::vector<std::vector<ComparisonRow>>& grids,
    const std::string& platform_name) {
  std::vector<double> speedups;
  std::vector<double> savings;
  for (const auto& grid : grids) {
    for (const auto& row : grid) {
      if (row.platform == platform_name) {
        speedups.push_back(row.speedup);
        savings.push_back(row.energy_saving);
      }
    }
  }
  WAVEPIM_REQUIRE(!speedups.empty(), "no rows matched " + platform_name);
  return {geomean(speedups), geomean(savings)};
}

}  // namespace wavepim::core
