#pragma once

#include <string>
#include <vector>

#include "core/wavepim.h"

namespace wavepim::core {

/// Serialises comparison grids for downstream plotting — the CSV columns
/// mirror Figs. 11/12 (normalised time/energy per platform per benchmark).
///
/// `benchmarks` are the column labels; `grids` one compare_all() result
/// per benchmark (same platform order in each).
std::string to_csv(const std::vector<std::string>& benchmarks,
                   const std::vector<std::vector<ComparisonRow>>& grids,
                   bool energy);

/// GitHub-flavoured markdown table of the same grid.
std::string to_markdown(const std::vector<std::string>& benchmarks,
                        const std::vector<std::vector<ComparisonRow>>& grids,
                        bool energy);

/// Per-component energy breakdown of one PIM projection (drives the §7.4
/// under-utilisation analysis).
struct EnergyBreakdown {
  std::string platform;
  double static_fraction = 0.0;
  double dynamic_fraction = 0.0;
  double network_fraction = 0.0;
  double host_fraction = 0.0;
  double hbm_fraction = 0.0;
  Joules total;
};

EnergyBreakdown breakdown_energy(const mapping::Problem& problem,
                                 const pim::ChipConfig& chip);

}  // namespace wavepim::core
