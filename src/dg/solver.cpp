#include "dg/solver.h"

#include <array>
#include <vector>

#include "common/error.h"
#include "dg/operators.h"
#include "dg/rk.h"
#include "trace/trace.h"

namespace wavepim::dg {

using mesh::Axis;
using mesh::Face;

template <typename Physics>
Solver<Physics>::Solver(const mesh::StructuredMesh& mesh,
                        MaterialField<Material> materials,
                        const Options& options)
    : mesh_(mesh),
      materials_(std::move(materials)),
      options_(options),
      ref_(make_reference_element(options.n1d)) {
  WAVEPIM_REQUIRE(materials_.size() == mesh_.num_elements(),
                  "one material per element required");
  const auto nodes = static_cast<std::size_t>(ref_->num_nodes());
  state_ = Field(mesh_.num_elements(), Physics::kNumVars, nodes);
  aux_ = Field(mesh_.num_elements(), Physics::kNumVars, nodes);
  rhs_ = Field(mesh_.num_elements(), Physics::kNumVars, nodes);
}

template <typename Physics>
double Solver<Physics>::stable_dt() const {
  const double c = materials_.max_wave_speed();
  const double n1d = ref_->n1d();
  // Classic dG-SEM CFL bound: dt ~ h / (c * N^2); the default cfl of 1.0
  // with the n1d^2 denominator is conservative for LSRK(5,4).
  return options_.cfl * mesh_.element_size() / (c * n1d * n1d);
}

template <typename Physics>
void Solver<Physics>::compute_volume(const Field& u, Field& rhs) const {
  trace::Span span("dg.volume");
  constexpr std::size_t kVars = Physics::kNumVars;
  const auto nodes = static_cast<std::size_t>(ref_->num_nodes());
  const auto scale = static_cast<float>(2.0 / mesh_.element_size());

  parallel_for(mesh_.num_elements(), [&](std::size_t e) {
    const Material& m = materials_.at(e);
    // Per-element derivative workspace (kVars slices); thread_local keeps
    // allocations out of the hot loop.
    thread_local std::vector<float> deriv_storage;
    deriv_storage.resize(kVars * nodes);

    std::array<float*, kVars> rhs_ptrs;
    for (std::size_t v = 0; v < kVars; ++v) {
      rhs_ptrs[v] = rhs.at(e, v).data();
      std::fill_n(rhs_ptrs[v], nodes, 0.0f);
    }

    for (Axis a : mesh::kAllAxes) {
      std::array<const float*, kVars> deriv_ptrs;
      for (std::size_t v = 0; v < kVars; ++v) {
        std::span<float> dv{deriv_storage.data() + v * nodes, nodes};
        differentiate(*ref_, a, u.at(e, v), dv, scale);
        deriv_ptrs[v] = dv.data();
      }
      Physics::accumulate_volume(a, m, deriv_ptrs, rhs_ptrs, nodes);
    }
  });
}

template <typename Physics>
void Solver<Physics>::add_flux(const Field& u, Field& rhs) const {
  trace::Span span("dg.flux");
  constexpr std::size_t kVars = Physics::kNumVars;
  const auto face_nodes = static_cast<std::size_t>(ref_->nodes_per_face());
  // Strong-form lift on collocated GLL nodes: (2/h) / w_endpoint applied at
  // the face nodes only.
  const auto lift = static_cast<float>(
      (2.0 / mesh_.element_size()) / ref_->end_weight());

  parallel_for(mesh_.num_elements(), [&](std::size_t e) {
    const Material& mm = materials_.at(e);
    std::array<float, kVars> um;
    std::array<float, kVars> up;
    std::array<float, kVars> delta;

    for (Face f : mesh::kAllFaces) {
      const Axis axis = mesh::axis_of(f);
      const int sign = mesh::normal_sign(f);
      const auto& fn_m = ref_->face_nodes(f);
      const auto neighbor = mesh_.neighbor(static_cast<mesh::ElementId>(e), f);
      const auto& fn_p = ref_->face_nodes(mesh::opposite(f));

      for (std::size_t q = 0; q < face_nodes; ++q) {
        const int node_m = fn_m[q];
        for (std::size_t v = 0; v < kVars; ++v) {
          um[v] = u.value(e, v, static_cast<std::size_t>(node_m));
        }
        const Material* mp = &mm;
        if (neighbor) {
          const int node_p = fn_p[q];
          for (std::size_t v = 0; v < kVars; ++v) {
            up[v] = u.value(*neighbor, v, static_cast<std::size_t>(node_p));
          }
          mp = &materials_.at(*neighbor);
        } else {
          Physics::reflect(axis, sign, um.data(), up.data());
        }
        Physics::flux_correction(axis, sign, options_.flux, mm, *mp,
                                 um.data(), up.data(), delta.data());
        for (std::size_t v = 0; v < kVars; ++v) {
          rhs.value(e, v, static_cast<std::size_t>(node_m)) -=
              lift * delta[v];
        }
      }
    }
  });
}

template <typename Physics>
void Solver<Physics>::compute_rhs(const Field& u, Field& rhs, double t) const {
  compute_volume(u, rhs);
  add_flux(u, rhs);
  if (!damping_.empty()) {
    const auto nodes = static_cast<std::size_t>(ref_->num_nodes());
    parallel_for(mesh_.num_elements(), [&](std::size_t e) {
      const auto sigma = static_cast<float>(damping_[e]);
      if (sigma == 0.0f) {
        return;
      }
      for (std::size_t v = 0; v < Physics::kNumVars; ++v) {
        const auto uv = u.at(e, v);
        auto rv = rhs.at(e, v);
        for (std::size_t n = 0; n < nodes; ++n) {
          rv[n] -= sigma * uv[n];
        }
      }
    });
  }
  if (source_) {
    source_(rhs, t);
  }
}

template <typename Physics>
void Solver<Physics>::set_damping(std::vector<double> sigma_per_element) {
  WAVEPIM_REQUIRE(sigma_per_element.size() == mesh_.num_elements(),
                  "one damping coefficient per element required");
  for (double s : sigma_per_element) {
    WAVEPIM_REQUIRE(s >= 0.0, "damping must be non-negative");
  }
  damping_ = std::move(sigma_per_element);
}

template <typename Physics>
std::vector<double> Solver<Physics>::make_boundary_sponge(
    int thickness, double sigma_max) const {
  WAVEPIM_REQUIRE(thickness >= 1, "sponge needs at least one element layer");
  WAVEPIM_REQUIRE(sigma_max >= 0.0, "sigma_max must be non-negative");
  std::vector<double> sigma(mesh_.num_elements(), 0.0);
  const auto dim = mesh_.dim();
  for (mesh::ElementId e = 0; e < mesh_.num_elements(); ++e) {
    const auto c = mesh_.coords_of(e);
    // Distance (in element layers) to the nearest domain face.
    std::uint32_t depth = dim;
    for (std::size_t d = 0; d < 3; ++d) {
      depth = std::min({depth, c[d], dim - 1 - c[d]});
    }
    if (depth < static_cast<std::uint32_t>(thickness)) {
      const double x =
          1.0 - static_cast<double>(depth) / static_cast<double>(thickness);
      sigma[e] = sigma_max * x * x;  // quadratic ramp
    }
  }
  return sigma;
}

template <typename Physics>
void Solver<Physics>::step(double dt) {
  WAVEPIM_REQUIRE(dt > 0.0, "time step must be positive");
  trace::Span step_span("dg.step");
  const std::size_t total = state_.size();
  float* u = state_.flat().data();
  float* k = aux_.flat().data();
  const float* r = rhs_.flat().data();

  for (int s = 0; s < Lsrk54::kNumStages; ++s) {
    trace::Span stage_span("dg.rk_stage", static_cast<double>(s));
    compute_rhs(state_, rhs_, time_ + Lsrk54::kC[s] * dt);
    const auto a = static_cast<float>(Lsrk54::kA[s]);
    const auto b = static_cast<float>(Lsrk54::kB[s]);
    const auto fdt = static_cast<float>(dt);
    trace::Span update_span("dg.rk_update");
    parallel_for((total + 65535) / 65536, [&](std::size_t chunk) {
      const std::size_t begin = chunk * 65536;
      const std::size_t end = std::min(total, begin + 65536);
      for (std::size_t i = begin; i < end; ++i) {
        k[i] = a * k[i] + fdt * r[i];
        u[i] += b * k[i];
      }
    });
  }
  time_ += dt;
}

template <typename Physics>
void Solver<Physics>::run(int num_steps, double dt) {
  if (dt <= 0.0) {
    dt = stable_dt();
  }
  for (int i = 0; i < num_steps; ++i) {
    step(dt);
  }
}

template <typename Physics>
double Solver<Physics>::total_energy() const {
  const auto nodes = static_cast<std::size_t>(ref_->num_nodes());
  const double jac = std::pow(mesh_.element_size() / 2.0, 3);
  double energy = 0.0;
  std::array<float, Physics::kNumVars> u{};
  for (std::size_t e = 0; e < mesh_.num_elements(); ++e) {
    const Material& m = materials_.at(e);
    for (std::size_t n = 0; n < nodes; ++n) {
      for (std::size_t v = 0; v < Physics::kNumVars; ++v) {
        u[v] = state_.value(e, v, n);
      }
      energy += ref_->weight_of(static_cast<int>(n)) * jac *
                Physics::energy_density(m, u.data());
    }
  }
  return energy;
}

template class Solver<AcousticPhysics>;
template class Solver<ElasticPhysics>;

}  // namespace wavepim::dg
