#include "dg/op_counter.h"

#include <cmath>

#include "common/error.h"

namespace wavepim::dg {

const char* to_string(ProblemKind k) {
  switch (k) {
    case ProblemKind::Acoustic:
      return "Acoustic";
    case ProblemKind::ElasticCentral:
      return "Elastic-Central";
    case ProblemKind::ElasticRiemann:
      return "Elastic-Riemann";
  }
  return "?";
}

bool is_elastic(ProblemKind k) { return k != ProblemKind::Acoustic; }

FluxType flux_of(ProblemKind k) {
  return k == ProblemKind::ElasticCentral ? FluxType::Central
                                          : FluxType::Upwind;
}

namespace {

constexpr std::uint64_t kFp32Bytes = 4;

std::uint64_t vars_of(ProblemKind k) { return is_elastic(k) ? 9 : 4; }

/// Derivative slices a tuned Volume kernel computes:
/// acoustic: grad p (3) + the diagonal of grad v (3) = 6;
/// elastic: full grad v (9) + the per-axis sigma columns (9) = 18.
std::uint64_t volume_deriv_slices(ProblemKind k) {
  return is_elastic(k) ? 18 : 6;
}

/// FLOPs to combine derivative slices into contributions, per node.
std::uint64_t volume_accum_flops_per_node(ProblemKind k) {
  // Acoustic: rhs_p = -kappa (a+b+c) [3], rhs_v = -(1/rho) dp [3 x 1].
  // Elastic per axis: 3 velocity updates (1 each) + 4 diagonal terms +
  // 2 shear terms, roughly 2 flops each -> 3 axes x ~16.
  return is_elastic(k) ? 48 : 6;
}

/// FLOPs per face node for the flux correction (trace combination + star
/// state + delta), counted from the arithmetic in dg/physics.cpp.
std::uint64_t flux_flops_per_face_node(ProblemKind k) {
  switch (k) {
    case ProblemKind::Acoustic:
      return 24;  // upwind star states (12) + deltas + lift (12)
    case ProblemKind::ElasticCentral:
      return 60;  // 12 trace averages + 9 deltas with tensor terms
    case ProblemKind::ElasticRiemann:
      return 170;  // P/S impedance decomposition dominates
  }
  return 0;
}

}  // namespace

ProblemOps count_problem_ops(ProblemKind kind, std::uint64_t num_elements,
                             int n1d) {
  WAVEPIM_REQUIRE(n1d >= 2, "n1d must be at least 2");
  const std::uint64_t n = static_cast<std::uint64_t>(n1d);
  const std::uint64_t nodes = n * n * n;
  const std::uint64_t face_nodes = 6 * n * n;
  const std::uint64_t vars = vars_of(kind);

  ProblemOps ops;

  // --- Volume ---------------------------------------------------------
  // Each derivative slice is nodes dot-products of length n1d.
  const std::uint64_t deriv_flops =
      volume_deriv_slices(kind) * nodes * (2 * n - 1);
  ops.volume.flops =
      num_elements * (deriv_flops + nodes * volume_accum_flops_per_node(kind));
  // Reads all variables plus dshape row reuse; writes contributions.
  ops.volume.bytes_read = num_elements * vars * nodes * kFp32Bytes;
  ops.volume.bytes_written = num_elements * vars * nodes * kFp32Bytes;

  // --- Flux -----------------------------------------------------------
  ops.flux.flops = num_elements * face_nodes * flux_flops_per_face_node(kind);
  // Reads own traces + neighbour traces, writes face contributions.
  ops.flux.bytes_read = num_elements * 2 * face_nodes * vars * kFp32Bytes;
  ops.flux.bytes_written = num_elements * face_nodes * vars * kFp32Bytes;

  // --- Integration (one RK stage) --------------------------------------
  // k = a k + dt r (2 flops) and u += b k (2 flops) per value.
  ops.integration.flops = num_elements * vars * nodes * 4;
  // Reads contributions + auxiliaries + variables, writes aux + variables.
  ops.integration.bytes_read = num_elements * 3 * vars * nodes * kFp32Bytes;
  ops.integration.bytes_written = num_elements * 2 * vars * nodes * kFp32Bytes;

  return ops;
}

double instruction_expansion_factor(ProblemKind kind) {
  // Calibrated once against Table 6's nvprof instruction/FLOP ratios
  // (inst_executed x 32 over flop_count_sp): acoustic 5.47, elastic-central
  // 3.50, elastic-Riemann 6.70. The Riemann kernels branch heavily (the
  // paper notes "large divergence"), the central solver is lean.
  switch (kind) {
    case ProblemKind::Acoustic:
      return 5.47;
    case ProblemKind::ElasticCentral:
      return 3.50;
    case ProblemKind::ElasticRiemann:
      return 6.70;
  }
  return 0.0;
}

BenchmarkCharacteristics characterize(ProblemKind kind, int refinement_level,
                                      int n1d) {
  const std::uint64_t per_axis = 1ull << refinement_level;
  const std::uint64_t elements = per_axis * per_axis * per_axis;
  const ProblemOps ops = count_problem_ops(kind, elements, n1d);

  BenchmarkCharacteristics c;
  c.name = std::string(to_string(kind)) + "_" +
           std::to_string(refinement_level);
  c.refinement_level = refinement_level;
  c.num_elements = elements;
  c.num_flops = ops.total().flops;
  c.num_instructions = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(c.num_flops) *
                   instruction_expansion_factor(kind)));
  return c;
}

}  // namespace wavepim::dg
