#pragma once

#include <array>

namespace wavepim::dg {

/// Five-stage, fourth-order low-storage Runge–Kutta scheme
/// (Carpenter & Kennedy 1994, the standard LSRK(5,4)).
///
/// The paper's "five integration steps in each time-step" (§2.2) are
/// exactly the five stages of this scheme; the per-node "auxiliaries"
/// (Table 1) are its single low-storage register k:
///   for each stage s:  k <- A[s] * k + dt * rhs(u);  u <- u + B[s] * k.
struct Lsrk54 {
  static constexpr int kNumStages = 5;

  static constexpr std::array<double, 5> kA = {
      0.0,
      -567301805773.0 / 1357537059087.0,
      -2404267990393.0 / 2016746695238.0,
      -3550918686646.0 / 2091501179385.0,
      -1275806237668.0 / 842570457699.0,
  };
  static constexpr std::array<double, 5> kB = {
      1432997174477.0 / 9575080441755.0,
      5161836677717.0 / 13612068292357.0,
      1720146321549.0 / 2090206949498.0,
      3134564353537.0 / 4481467310338.0,
      2277821191437.0 / 14882151754819.0,
  };
  /// Stage times as fractions of dt (for time-dependent sources).
  static constexpr std::array<double, 5> kC = {
      0.0,
      1432997174477.0 / 9575080441755.0,
      2526269341429.0 / 6820363962896.0,
      2006345519317.0 / 3224310063776.0,
      2802321613138.0 / 2924317926251.0,
  };
};

}  // namespace wavepim::dg
