#include "dg/physics.h"

#include <cmath>

namespace wavepim::dg {

using mesh::Axis;

const char* to_string(FluxType f) {
  return f == FluxType::Central ? "central" : "riemann";
}

// ---------------------------------------------------------------------------
// Acoustic
// ---------------------------------------------------------------------------

void AcousticPhysics::accumulate_volume(
    Axis axis, const Material& m,
    const std::array<const float*, kNumVars>& deriv,
    const std::array<float*, kNumVars>& rhs, std::size_t count) {
  const auto kappa = static_cast<float>(m.kappa);
  const auto inv_rho = static_cast<float>(1.0 / m.rho);
  // Along axis a only the matching velocity component enters div v, and
  // only the a-component of v receives grad p.
  const std::size_t va = Vx + mesh::index_of(axis);
  const float* dv = deriv[va];
  const float* dp = deriv[P];
  float* rp = rhs[P];
  float* rv = rhs[va];
  for (std::size_t n = 0; n < count; ++n) {
    rp[n] -= kappa * dv[n];
    rv[n] -= inv_rho * dp[n];
  }
}

void AcousticPhysics::flux_correction(Axis axis, int sign, FluxType flux,
                                      const Material& mm, const Material& mp,
                                      const float* um, const float* up,
                                      float* delta) {
  const std::size_t va = Vx + mesh::index_of(axis);
  const double s = sign;
  const double pm = um[P];
  const double pp = up[P];
  const double vnm = s * um[va];  // v.n with outward normal n = s * e_axis
  const double vnp = s * up[va];

  double p_star;
  double vn_star;
  if (flux == FluxType::Central) {
    p_star = 0.5 * (pm + pp);
    vn_star = 0.5 * (vnm + vnp);
  } else {
    // Exact linear Riemann solution with per-side impedances:
    //   p* + Z- vn* = p- + Z- vn-   (right-going invariant from '-')
    //   p* - Z+ vn* = p+ - Z+ vn+   (left-going invariant from '+')
    const double zm = mm.impedance();
    const double zp = mp.impedance();
    const double zsum = zm + zp;
    p_star = (zp * pm + zm * pp + zm * zp * (vnm - vnp)) / zsum;
    vn_star = (zm * vnm + zp * vnp + (pm - pp)) / zsum;
  }

  for (std::size_t v = 0; v < kNumVars; ++v) {
    delta[v] = 0.0f;
  }
  // (F* - F-).n: p-equation flux is kappa * v.n; v-equation flux is
  // (p / rho) n, whose only nonzero component is along the face axis.
  delta[P] = static_cast<float>(mm.kappa * (vn_star - vnm));
  delta[va] = static_cast<float>(s * (p_star - pm) / mm.rho);
}

void AcousticPhysics::reflect(Axis axis, int /*sign*/, const float* um,
                              float* up) {
  const std::size_t va = Vx + mesh::index_of(axis);
  for (std::size_t v = 0; v < kNumVars; ++v) {
    up[v] = um[v];
  }
  up[va] = -um[va];  // rigid wall: v.n = 0 at the interface
}

double AcousticPhysics::energy_density(const Material& m, const float* u) {
  const double p = u[P];
  const double v2 = static_cast<double>(u[Vx]) * u[Vx] +
                    static_cast<double>(u[Vy]) * u[Vy] +
                    static_cast<double>(u[Vz]) * u[Vz];
  return p * p / (2.0 * m.kappa) + 0.5 * m.rho * v2;
}

// ---------------------------------------------------------------------------
// Elastic
// ---------------------------------------------------------------------------

void ElasticPhysics::accumulate_volume(
    Axis axis, const Material& m,
    const std::array<const float*, kNumVars>& deriv,
    const std::array<float*, kNumVars>& rhs, std::size_t count) {
  const auto inv_rho = static_cast<float>(1.0 / m.rho);
  const auto lam = static_cast<float>(m.lambda);
  const auto mu = static_cast<float>(m.mu);
  const auto lam2mu = static_cast<float>(m.lambda + 2.0 * m.mu);

  const std::size_t a = mesh::index_of(axis);
  // rho dv_i/dt += d_a sigma_{ia}; dsigma/dt += elastic moduli * d_a v.
  const float* ds0 = deriv[sigma_var(0, a)];
  const float* ds1 = deriv[sigma_var(1, a)];
  const float* ds2 = deriv[sigma_var(2, a)];
  const float* dva = deriv[Vx + a];

  float* rv0 = rhs[Vx];
  float* rv1 = rhs[Vy];
  float* rv2 = rhs[Vz];
  float* r_norm = rhs[sigma_var(a, a)];  // receives (lam+2mu) d_a v_a
  float* r_d0 = rhs[Sxx];
  float* r_d1 = rhs[Syy];
  float* r_d2 = rhs[Szz];

  for (std::size_t n = 0; n < count; ++n) {
    rv0[n] += inv_rho * ds0[n];
    rv1[n] += inv_rho * ds1[n];
    rv2[n] += inv_rho * ds2[n];
  }
  // Diagonal stress: sigma_ii += lambda * d_a v_a for all i, plus an extra
  // 2 mu * d_a v_a on the i == a entry.
  for (std::size_t n = 0; n < count; ++n) {
    const float dvan = dva[n];
    r_d0[n] += lam * dvan;
    r_d1[n] += lam * dvan;
    r_d2[n] += lam * dvan;
    r_norm[n] += (lam2mu - lam) * dvan;
  }
  // Shear stress: sigma_{ia} += mu * d_a v_i for i != a (the symmetric
  // mu * d_i v_a halves arrive when axis == i is processed).
  for (std::size_t i = 0; i < 3; ++i) {
    if (i == a) {
      continue;
    }
    float* rs = rhs[sigma_var(i, a)];
    const float* dvi = deriv[Vx + i];
    for (std::size_t n = 0; n < count; ++n) {
      rs[n] += mu * dvi[n];
    }
  }
}

void ElasticPhysics::flux_correction(Axis axis, int sign, FluxType flux,
                                     const Material& mm, const Material& mp,
                                     const float* um, const float* up,
                                     float* delta) {
  const std::size_t a = mesh::index_of(axis);
  const double s = sign;

  // Tractions t = sigma . n (n = s e_a) on both sides.
  std::array<double, 3> tm{};
  std::array<double, 3> tp{};
  std::array<double, 3> vm{};
  std::array<double, 3> vp{};
  for (std::size_t i = 0; i < 3; ++i) {
    tm[i] = s * um[sigma_var(i, a)];
    tp[i] = s * up[sigma_var(i, a)];
    vm[i] = um[Vx + i];
    vp[i] = up[Vx + i];
  }

  std::array<double, 3> t_star{};
  std::array<double, 3> v_star{};
  if (flux == FluxType::Central) {
    for (std::size_t i = 0; i < 3; ++i) {
      t_star[i] = 0.5 * (tm[i] + tp[i]);
      v_star[i] = 0.5 * (vm[i] + vp[i]);
    }
  } else {
    // Upwind flux via P/S impedance decomposition (Wilcox et al. 2010).
    // Elastic invariants: (tn - Zp vn) travels along +n, (tn + Zp vn)
    // along -n (note the sign flip relative to acoustics: p ~ -tn).
    const double zpm = mm.zp();
    const double zpp = mp.zp();
    const double zsm = mm.zs();
    const double zsp = mp.zs();

    // t.n = sum_i t_i n_i; with n = s e_a this is s * t_a.
    const double tn_m = s * tm[a];
    const double tn_p = s * tp[a];
    const double vn_m = s * vm[a];
    const double vn_p = s * vp[a];

    const double zp_sum = zpm + zpp;
    const double tn_star =
        (zpp * tn_m + zpm * tn_p + zpm * zpp * (vn_p - vn_m)) / zp_sum;
    const double vn_star =
        (zpm * vn_m + zpp * vn_p + (tn_p - tn_m)) / zp_sum;

    const double zs_sum = zsm + zsp;
    for (std::size_t i = 0; i < 3; ++i) {
      const double n_i = (i == a) ? s : 0.0;
      const double tt_m = tm[i] - tn_m * n_i;
      const double tt_p = tp[i] - tn_p * n_i;
      const double vt_m = vm[i] - vn_m * n_i;
      const double vt_p = vp[i] - vn_p * n_i;
      double tt_star = 0.0;
      double vt_star = vt_m;
      if (zs_sum > 1e-300) {
        tt_star = (zsp * tt_m + zsm * tt_p + zsm * zsp * (vt_p - vt_m)) / zs_sum;
        vt_star = (zsm * vt_m + zsp * vt_p + (tt_p - tt_m)) / zs_sum;
      }
      t_star[i] = tt_star + tn_star * n_i;
      v_star[i] = vt_star + vn_star * n_i;
    }
  }

  // (F* - F-).n with F_v.n = -(1/rho) t and
  // F_sigma.n = -lambda (v.n) I - mu (v (x) n + n (x) v).
  std::array<double, 3> dv{};
  for (std::size_t i = 0; i < 3; ++i) {
    dv[i] = v_star[i] - vm[i];
    delta[Vx + i] = static_cast<float>(-(t_star[i] - tm[i]) / mm.rho);
  }
  const double dvn = s * dv[a];
  for (std::size_t v = Sxx; v <= Sxy; ++v) {
    delta[v] = 0.0f;
  }
  delta[Sxx] -= static_cast<float>(mm.lambda * dvn);
  delta[Syy] -= static_cast<float>(mm.lambda * dvn);
  delta[Szz] -= static_cast<float>(mm.lambda * dvn);
  // mu (dv (x) n + n (x) dv): with n = s e_a the tensor entry (i, a) is
  // mu * s * dv_i for i != a and 2 mu * s * dv_a on the diagonal (a, a).
  // Voigt storage holds each symmetric component once.
  for (std::size_t i = 0; i < 3; ++i) {
    delta[sigma_var(i, a)] -= static_cast<float>(mm.mu * dv[i] * s);
  }
  delta[sigma_var(a, a)] -= static_cast<float>(mm.mu * dv[a] * s);
}

void ElasticPhysics::reflect(Axis axis, int /*sign*/, const float* um,
                             float* up) {
  // Traction-free (free surface) ghost: velocities mirrored even, traction
  // components of sigma mirrored odd so that t* = sigma.n -> 0.
  const std::size_t a = mesh::index_of(axis);
  for (std::size_t v = 0; v < kNumVars; ++v) {
    up[v] = um[v];
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t sv = sigma_var(i, a);
    up[sv] = -um[sv];
  }
}

double ElasticPhysics::energy_density(const Material& m, const float* u) {
  const double v2 = static_cast<double>(u[Vx]) * u[Vx] +
                    static_cast<double>(u[Vy]) * u[Vy] +
                    static_cast<double>(u[Vz]) * u[Vz];
  // Strain from stress: eps = (sigma - lambda tr(eps) I) / (2 mu),
  // tr(eps) = tr(sigma) / (3 lambda + 2 mu). Strain energy = sigma:eps / 2.
  const double trs = static_cast<double>(u[Sxx]) + u[Syy] + u[Szz];
  const double tre = trs / (3.0 * m.lambda + 2.0 * m.mu);
  auto eps_diag = [&](double sig) { return (sig - m.lambda * tre) / (2.0 * m.mu); };
  const double exx = eps_diag(u[Sxx]);
  const double eyy = eps_diag(u[Syy]);
  const double ezz = eps_diag(u[Szz]);
  const double eyz = u[Syz] / (2.0 * m.mu);
  const double exz = u[Sxz] / (2.0 * m.mu);
  const double exy = u[Sxy] / (2.0 * m.mu);
  const double strain_energy =
      0.5 * (u[Sxx] * exx + u[Syy] * eyy + u[Szz] * ezz +
             2.0 * (u[Syz] * eyz + u[Sxz] * exz + u[Sxy] * exy));
  return 0.5 * m.rho * v2 + strain_energy;
}

}  // namespace wavepim::dg
