#include "dg/io.h"

#include <cmath>
#include <fstream>
#include <ostream>

#include "common/error.h"

namespace wavepim::dg {

namespace {

std::array<double, 3> node_position(const mesh::StructuredMesh& mesh,
                                    const ReferenceElement& ref,
                                    std::size_t e, int n) {
  const auto corner = mesh.corner_of(static_cast<mesh::ElementId>(e));
  const auto xi = ref.coords_of(n);
  const double h = mesh.element_size();
  return {corner[0] + 0.5 * (xi[0] + 1.0) * h,
          corner[1] + 0.5 * (xi[1] + 1.0) * h,
          corner[2] + 0.5 * (xi[2] + 1.0) * h};
}

void check_shapes(const mesh::StructuredMesh& mesh,
                  const ReferenceElement& ref, const Field& field) {
  WAVEPIM_REQUIRE(field.num_elements() == mesh.num_elements() &&
                      field.nodes_per_element() ==
                          static_cast<std::size_t>(ref.num_nodes()),
                  "field shape does not match mesh/reference element");
}

}  // namespace

void write_slice_csv(std::ostream& os, const mesh::StructuredMesh& mesh,
                     const ReferenceElement& ref, const Field& field,
                     std::size_t var, mesh::Axis axis, double coordinate) {
  check_shapes(mesh, ref, field);
  WAVEPIM_REQUIRE(var < field.num_vars(), "variable index out of range");

  // Nodes whose axis coordinate is within half a nodal spacing of the
  // requested plane.
  // Physical node spacing = reference spacing * h/2.
  const double h = mesh.element_size();
  const double tol = 0.51 * 0.5 * h *
                     (ref.basis().points()[1] - ref.basis().points()[0]);
  const auto a = mesh::index_of(axis);

  os << "x,y,z,value\n";
  for (std::size_t e = 0; e < field.num_elements(); ++e) {
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto x = node_position(mesh, ref, e, n);
      if (std::fabs(x[a] - coordinate) <= tol) {
        os << x[0] << ',' << x[1] << ',' << x[2] << ','
           << field.value(e, var, static_cast<std::size_t>(n)) << '\n';
      }
    }
  }
}

void write_vtk(std::ostream& os, const mesh::StructuredMesh& mesh,
               const ReferenceElement& ref, const Field& field,
               const std::vector<std::string>& var_names) {
  check_shapes(mesh, ref, field);
  WAVEPIM_REQUIRE(var_names.size() == field.num_vars(),
                  "one name per variable required");

  const std::size_t total_points =
      field.num_elements() * field.nodes_per_element();
  os << "# vtk DataFile Version 3.0\n"
     << "wavepim nodal field\n"
     << "ASCII\n"
     << "DATASET POLYDATA\n"
     << "POINTS " << total_points << " float\n";
  for (std::size_t e = 0; e < field.num_elements(); ++e) {
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto x = node_position(mesh, ref, e, n);
      os << x[0] << ' ' << x[1] << ' ' << x[2] << '\n';
    }
  }
  os << "POINT_DATA " << total_points << '\n';
  for (std::size_t v = 0; v < field.num_vars(); ++v) {
    os << "SCALARS " << var_names[v] << " float 1\n"
       << "LOOKUP_TABLE default\n";
    for (std::size_t e = 0; e < field.num_elements(); ++e) {
      for (std::size_t n = 0; n < field.nodes_per_element(); ++n) {
        os << field.value(e, v, n) << '\n';
      }
    }
  }
}

void write_slice_csv_file(const std::string& path,
                          const mesh::StructuredMesh& mesh,
                          const ReferenceElement& ref, const Field& field,
                          std::size_t var, mesh::Axis axis,
                          double coordinate) {
  std::ofstream os(path);
  WAVEPIM_REQUIRE(os.good(), "cannot open " + path);
  write_slice_csv(os, mesh, ref, field, var, axis, coordinate);
}

void write_vtk_file(const std::string& path,
                    const mesh::StructuredMesh& mesh,
                    const ReferenceElement& ref, const Field& field,
                    const std::vector<std::string>& var_names) {
  std::ofstream os(path);
  WAVEPIM_REQUIRE(os.good(), "cannot open " + path);
  write_vtk(os, mesh, ref, field, var_names);
}

}  // namespace wavepim::dg
