#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace wavepim::dg {

/// Single-precision nodal field storage, element-major then variable-major:
/// data[(e * num_vars + v) * nodes_per_element + node].
///
/// FP32 matches the paper's chosen precision for both PIM and GPU. The
/// layout keeps each (element, variable) slice contiguous, which is both
/// cache-friendly on the CPU and exactly the column granularity the PIM
/// mapping copies into crossbar blocks.
class Field {
 public:
  Field() = default;
  Field(std::size_t num_elements, std::size_t num_vars,
        std::size_t nodes_per_element)
      : num_elements_(num_elements),
        num_vars_(num_vars),
        nodes_(nodes_per_element),
        data_(num_elements * num_vars * nodes_per_element, 0.0f) {}

  [[nodiscard]] std::size_t num_elements() const { return num_elements_; }
  [[nodiscard]] std::size_t num_vars() const { return num_vars_; }
  [[nodiscard]] std::size_t nodes_per_element() const { return nodes_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Mutable view of one (element, variable) slice of nodal values.
  [[nodiscard]] std::span<float> at(std::size_t e, std::size_t v) {
    return {data_.data() + offset(e, v), nodes_};
  }
  [[nodiscard]] std::span<const float> at(std::size_t e, std::size_t v) const {
    return {data_.data() + offset(e, v), nodes_};
  }

  [[nodiscard]] float& value(std::size_t e, std::size_t v, std::size_t node) {
    return data_[offset(e, v) + node];
  }
  [[nodiscard]] float value(std::size_t e, std::size_t v,
                            std::size_t node) const {
    return data_[offset(e, v) + node];
  }

  [[nodiscard]] std::span<const float> flat() const { return data_; }
  [[nodiscard]] std::span<float> flat() { return data_; }

  void fill(float v) { data_.assign(data_.size(), v); }

 private:
  [[nodiscard]] std::size_t offset(std::size_t e, std::size_t v) const {
    WAVEPIM_ASSERT(e < num_elements_ && v < num_vars_,
                   "field index out of range");
    return (e * num_vars_ + v) * nodes_;
  }

  std::size_t num_elements_ = 0;
  std::size_t num_vars_ = 0;
  std::size_t nodes_ = 0;
  std::vector<float> data_;
};

}  // namespace wavepim::dg
