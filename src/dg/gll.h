#pragma once

#include <vector>

namespace wavepim::dg {

/// Gauss–Legendre–Lobatto quadrature on [-1, 1].
///
/// The dG spectral-element discretisation collocates solution nodes with
/// GLL quadrature points, which makes the element mass matrix diagonal
/// ("Mass Inverse" in the paper's Table 1 is the reciprocal of these
/// weights times the Jacobian determinant).
struct GllRule {
  /// Nodes in ascending order; n >= 2 points (polynomial order n-1).
  std::vector<double> points;
  /// Positive quadrature weights summing to 2.
  std::vector<double> weights;
};

/// Computes the `n`-point GLL rule (n in [2, 32]) via Newton iteration on
/// the roots of (1-x^2) P'_{n-1}(x). Accurate to ~1e-15.
GllRule gll_rule(int n);

/// Evaluates the Legendre polynomial P_n at x (used by the rule builder
/// and exposed for tests).
double legendre(int n, double x);

}  // namespace wavepim::dg
