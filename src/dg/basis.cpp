#include "dg/basis.h"

#include <cmath>

#include "common/error.h"

namespace wavepim::dg {

Basis1d::Basis1d(const GllRule& rule)
    : n_(static_cast<int>(rule.points.size())),
      points_(rule.points),
      weights_(rule.weights) {
  WAVEPIM_REQUIRE(n_ >= 2, "basis needs at least 2 points");

  // Barycentric weights: w_i = 1 / prod_{j != i} (x_i - x_j).
  bary_.assign(n_, 1.0);
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (j != i) {
        bary_[i] /= (points_[i] - points_[j]);
      }
    }
  }

  // D_ij = (w_j / w_i) / (x_i - x_j) for i != j; rows sum to zero.
  d_.assign(static_cast<std::size_t>(n_) * n_, 0.0);
  for (int i = 0; i < n_; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < n_; ++j) {
      if (j != i) {
        const double v = (bary_[j] / bary_[i]) / (points_[i] - points_[j]);
        d_[i * n_ + j] = v;
        row_sum += v;
      }
    }
    d_[i * n_ + i] = -row_sum;
  }
}

double Basis1d::lagrange(int j, double x) const {
  WAVEPIM_REQUIRE(j >= 0 && j < n_, "cardinal index out of range");
  // Direct product form; fine for the accuracy tests this is used in.
  double v = 1.0;
  for (int m = 0; m < n_; ++m) {
    if (m != j) {
      v *= (x - points_[m]) / (points_[j] - points_[m]);
    }
  }
  return v;
}

double Basis1d::interpolate(const std::vector<double>& nodal, double x) const {
  WAVEPIM_REQUIRE(static_cast<int>(nodal.size()) == n_,
                  "nodal vector arity mismatch");
  double v = 0.0;
  for (int j = 0; j < n_; ++j) {
    v += nodal[j] * lagrange(j, x);
  }
  return v;
}

}  // namespace wavepim::dg
