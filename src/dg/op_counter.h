#pragma once

#include <cstdint>
#include <string>

#include "dg/physics.h"

namespace wavepim::dg {

/// Which physics/flux pairing a benchmark uses (the paper's three groups).
enum class ProblemKind {
  Acoustic,          ///< acoustic, upwind flux
  ElasticCentral,    ///< elastic, central flux solver
  ElasticRiemann,    ///< elastic, Riemann flux solver
};

const char* to_string(ProblemKind k);
bool is_elastic(ProblemKind k);
FluxType flux_of(ProblemKind k);

/// FLOP and memory-traffic counts for one launch of one kernel across the
/// whole mesh. These analytic counts drive both the Table 6 reproduction
/// and the GPU roofline model; they are derived from the operation
/// structure of the kernels in `dg/solver.cpp` (counting the algorithmic
/// minimum, i.e. only the derivative slices a tuned kernel computes).
struct KernelOps {
  std::uint64_t flops = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  [[nodiscard]] std::uint64_t bytes_total() const {
    return bytes_read + bytes_written;
  }
  KernelOps& operator+=(const KernelOps& o) {
    flops += o.flops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }
};

/// Counts for the three kernels of one benchmark configuration.
struct ProblemOps {
  KernelOps volume;
  KernelOps flux;
  KernelOps integration;

  [[nodiscard]] KernelOps total() const {
    KernelOps t = volume;
    t += flux;
    t += integration;
    return t;
  }
};

/// Analytic per-launch operation counts.
///
/// `num_elements` is the mesh size ((2^level)^3); `n1d` the nodes per
/// direction (8 for the paper's 512-node elements).
ProblemOps count_problem_ops(ProblemKind kind, std::uint64_t num_elements,
                             int n1d);

/// Table 6 row: one launch of each kernel (the paper's counts come from
/// nvprof with each kernel launched once on a V100).
struct BenchmarkCharacteristics {
  std::string name;
  int refinement_level = 0;
  std::uint64_t num_elements = 0;
  std::uint64_t num_instructions = 0;  ///< modelled GPU thread instructions
  std::uint64_t num_flops = 0;         ///< single-precision FLOPs
};

/// The modelled GPU executes more instructions than FLOPs (loads, index
/// arithmetic, branches). The per-problem expansion factors are calibrated
/// once against the paper's Table 6 nvprof ratios.
double instruction_expansion_factor(ProblemKind kind);

BenchmarkCharacteristics characterize(ProblemKind kind, int refinement_level,
                                      int n1d);

}  // namespace wavepim::dg
