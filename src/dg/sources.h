#pragma once

#include "dg/solver.h"

namespace wavepim::dg {

/// Ricker wavelet (second derivative of a Gaussian), the standard seismic
/// source time function: r(t) = (1 - 2 a) exp(-a), a = (pi f (t-t0))^2.
double ricker(double t, double peak_frequency, double delay);

/// Initialises a periodic acoustic plane wave travelling along `axis`:
///   p(x, 0) = sin(2 pi modes x_a / L),  v = n p / Z.
/// Exact solution at time t is the same profile shifted by c t — used by
/// the accuracy tests. Requires a homogeneous material.
void init_acoustic_plane_wave(AcousticSolver& solver, mesh::Axis axis,
                              int modes);

/// Samples the exact plane-wave pressure at time t for the node positions
/// of `solver`, writing into `expected` (same layout as one variable
/// slice per element, only var P is produced).
void sample_acoustic_plane_wave(const AcousticSolver& solver, mesh::Axis axis,
                                int modes, double t, Field& expected);

/// Initialises a periodic elastic P-wave travelling along X:
///   vx = sin(2 pi modes x / L), sxx = -Zp vx,
///   syy = szz = lambda / (lambda + 2 mu) * sxx.
void init_elastic_plane_p_wave(ElasticSolver& solver, int modes);

/// Initialises a periodic elastic S-wave travelling along X, polarised Y:
///   vy = sin(2 pi modes x / L), sxy = -Zs vy.
void init_elastic_plane_s_wave(ElasticSolver& solver, int modes);

/// Initialises a spherically-symmetric Gaussian pressure pulse centred at
/// `center` with width `sigma` (used by the scenario examples).
void init_acoustic_gaussian_pulse(AcousticSolver& solver,
                                  const std::array<double, 3>& center,
                                  double sigma, double amplitude);

/// A Ricker-wavelet point pressure source injected at the node nearest to
/// `position`; produces a SourceFn for Solver::set_source.
class PointSource {
 public:
  PointSource(const AcousticSolver& solver, const std::array<double, 3>& position,
              double peak_frequency, double delay, double amplitude);

  /// Adds amplitude * ricker(t) to rhs[P] at the chosen node, scaled by the
  /// inverse quadrature weight so injected energy is resolution-robust.
  void operator()(Field& rhs, double t) const;

  [[nodiscard]] std::size_t element() const { return element_; }
  [[nodiscard]] std::size_t node() const { return node_; }

 private:
  std::size_t element_;
  std::size_t node_;
  double peak_frequency_;
  double delay_;
  double scaled_amplitude_;
};

}  // namespace wavepim::dg
