#pragma once

#include <array>
#include <memory>
#include <vector>

#include "dg/basis.h"
#include "mesh/face.h"

namespace wavepim::dg {

/// Tensor-product hexahedral reference element on [-1,1]^3 with n1d GLL
/// nodes per direction (n1d^3 nodes total — the paper's 512-node element
/// is n1d = 8, i.e. polynomial order 7).
///
/// Node numbering: node(i, j, k) = i + n1d*(j + n1d*k), i along X.
/// Faces expose their node lists in an order such that face q of a face F
/// on one element geometrically coincides with face q of opposite(F) on
/// the structured-mesh neighbour — no orientation permutation is needed on
/// a conforming axis-aligned mesh.
class ReferenceElement {
 public:
  explicit ReferenceElement(int n1d);

  [[nodiscard]] int n1d() const { return n1d_; }
  [[nodiscard]] int num_nodes() const { return n1d_ * n1d_ * n1d_; }
  [[nodiscard]] int nodes_per_face() const { return n1d_ * n1d_; }
  [[nodiscard]] const Basis1d& basis() const { return basis_; }

  [[nodiscard]] int node(int i, int j, int k) const {
    return i + n1d_ * (j + n1d_ * k);
  }
  [[nodiscard]] std::array<int, 3> ijk_of(int node) const {
    return {node % n1d_, (node / n1d_) % n1d_, node / (n1d_ * n1d_)};
  }

  /// Reference coordinates of a node.
  [[nodiscard]] std::array<double, 3> coords_of(int node) const;

  /// 3D quadrature weight w_i * w_j * w_k of a node.
  [[nodiscard]] double weight_of(int node) const { return weights3d_[node]; }

  /// Node indices on a face, ordered by the two in-face axes ascending
  /// (matching order across neighbouring elements).
  [[nodiscard]] const std::vector<int>& face_nodes(mesh::Face f) const {
    return face_nodes_[mesh::index_of(f)];
  }

  /// 1D GLL weight at the face-normal endpoint — the "lift" denominator of
  /// the collocated dG surface term (both endpoints share the same weight).
  [[nodiscard]] double end_weight() const { return basis_.weights().front(); }

  /// Stride between consecutive nodes along an axis in the flat numbering.
  [[nodiscard]] int stride(mesh::Axis a) const {
    switch (a) {
      case mesh::Axis::X:
        return 1;
      case mesh::Axis::Y:
        return n1d_;
      case mesh::Axis::Z:
        return n1d_ * n1d_;
    }
    return 1;
  }

  /// First node of each grid line along `a`; lines have n1d nodes spaced by
  /// stride(a). There are n1d^2 lines per axis.
  [[nodiscard]] const std::vector<int>& line_starts(mesh::Axis a) const {
    return line_starts_[mesh::index_of(a)];
  }

 private:
  int n1d_;
  Basis1d basis_;
  std::vector<double> weights3d_;
  std::array<std::vector<int>, 6> face_nodes_;
  std::array<std::vector<int>, 3> line_starts_;
};

/// Shared, memoised reference elements (they are immutable and reused by
/// solver, mapping and op-count layers).
std::shared_ptr<const ReferenceElement> make_reference_element(int n1d);

}  // namespace wavepim::dg
