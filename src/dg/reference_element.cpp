#include "dg/reference_element.h"

#include <map>
#include <mutex>

#include "common/error.h"

namespace wavepim::dg {

using mesh::Axis;
using mesh::Face;

ReferenceElement::ReferenceElement(int n1d)
    : n1d_(n1d), basis_(gll_rule(n1d)) {
  WAVEPIM_REQUIRE(n1d >= 2 && n1d <= 16, "n1d out of supported range");

  const auto& w = basis_.weights();
  weights3d_.resize(static_cast<std::size_t>(num_nodes()));
  for (int k = 0; k < n1d_; ++k) {
    for (int j = 0; j < n1d_; ++j) {
      for (int i = 0; i < n1d_; ++i) {
        weights3d_[node(i, j, k)] = w[i] * w[j] * w[k];
      }
    }
  }

  // Face node lists, ordered by the two in-face axes ascending. For a face
  // normal to axis A, the in-face axes are the other two in (X, Y, Z)
  // order; both elements of a conforming pair enumerate them identically.
  for (Face f : mesh::kAllFaces) {
    auto& nodes = face_nodes_[mesh::index_of(f)];
    nodes.reserve(static_cast<std::size_t>(nodes_per_face()));
    const int fixed = (mesh::normal_sign(f) < 0) ? 0 : n1d_ - 1;
    switch (mesh::axis_of(f)) {
      case Axis::X:
        for (int k = 0; k < n1d_; ++k)
          for (int j = 0; j < n1d_; ++j) nodes.push_back(node(fixed, j, k));
        break;
      case Axis::Y:
        for (int k = 0; k < n1d_; ++k)
          for (int i = 0; i < n1d_; ++i) nodes.push_back(node(i, fixed, k));
        break;
      case Axis::Z:
        for (int j = 0; j < n1d_; ++j)
          for (int i = 0; i < n1d_; ++i) nodes.push_back(node(i, j, fixed));
        break;
    }
  }

  for (Axis a : mesh::kAllAxes) {
    auto& starts = line_starts_[mesh::index_of(a)];
    starts.reserve(static_cast<std::size_t>(n1d_) * n1d_);
    switch (a) {
      case Axis::X:
        for (int k = 0; k < n1d_; ++k)
          for (int j = 0; j < n1d_; ++j) starts.push_back(node(0, j, k));
        break;
      case Axis::Y:
        for (int k = 0; k < n1d_; ++k)
          for (int i = 0; i < n1d_; ++i) starts.push_back(node(i, 0, k));
        break;
      case Axis::Z:
        for (int j = 0; j < n1d_; ++j)
          for (int i = 0; i < n1d_; ++i) starts.push_back(node(i, j, 0));
        break;
    }
  }
}

std::array<double, 3> ReferenceElement::coords_of(int n) const {
  const auto ijk = ijk_of(n);
  const auto& x = basis_.points();
  return {x[ijk[0]], x[ijk[1]], x[ijk[2]]};
}

std::shared_ptr<const ReferenceElement> make_reference_element(int n1d) {
  static std::mutex mutex;
  static std::map<int, std::shared_ptr<const ReferenceElement>> cache;
  std::lock_guard lock(mutex);
  auto& slot = cache[n1d];
  if (!slot) {
    slot = std::make_shared<const ReferenceElement>(n1d);
  }
  return slot;
}

}  // namespace wavepim::dg
