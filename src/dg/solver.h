#pragma once

#include <functional>
#include <memory>

#include "common/parallel.h"
#include "dg/fields.h"
#include "dg/physics.h"
#include "dg/reference_element.h"
#include "mesh/structured_mesh.h"

namespace wavepim::dg {

/// Threaded CPU reference solver for one physics (acoustic or elastic).
///
/// Implements the paper's three kernels:
///  - Volume:      local derivatives -> volume contributions,
///  - Flux:        neighbour traces  -> flux contributions,
///  - Integration: 5-stage low-storage RK combining contributions with the
///                 per-node auxiliaries to advance the variables.
///
/// This solver is the ground truth the PIM functional simulation is
/// validated against, and also the source of the per-kernel operation
/// counts used by the cost models.
template <typename Physics>
class Solver {
 public:
  using Material = typename Physics::Material;

  struct Options {
    int n1d = 4;                        ///< nodes per direction (order+1)
    FluxType flux = FluxType::Upwind;   ///< interface flux solver
    double cfl = 1.0;                   ///< safety factor for stable_dt()
  };

  Solver(const mesh::StructuredMesh& mesh,
         MaterialField<Material> materials, const Options& options);

  [[nodiscard]] const mesh::StructuredMesh& mesh() const { return mesh_; }
  [[nodiscard]] const ReferenceElement& reference() const { return *ref_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] const MaterialField<Material>& materials() const {
    return materials_;
  }

  [[nodiscard]] Field& state() { return state_; }
  [[nodiscard]] const Field& state() const { return state_; }
  [[nodiscard]] double time() const { return time_; }

  /// Maximum stable time step under the configured CFL factor.
  [[nodiscard]] double stable_dt() const;

  /// Zeroes `rhs` and adds the Volume kernel (local derivatives).
  void compute_volume(const Field& u, Field& rhs) const;

  /// Adds the Flux kernel (inter-element corrections) to `rhs`.
  void add_flux(const Field& u, Field& rhs) const;

  /// Volume + Flux + external source at simulation time `t`.
  void compute_rhs(const Field& u, Field& rhs, double t) const;

  /// Advances one full time step (five RK stages).
  void step(double dt);

  /// Runs `num_steps` steps of size `dt` (default: stable_dt()).
  void run(int num_steps, double dt = 0.0);

  /// Total discrete energy of the current state (quadrature-weighted).
  [[nodiscard]] double total_energy() const;

  /// Optional external source; called once per RK stage with the stage
  /// time. It must *add* to the rhs field.
  using SourceFn = std::function<void(Field& rhs, double t)>;
  void set_source(SourceFn fn) { source_ = std::move(fn); }

  /// Optional absorbing sponge: per-element damping coefficients sigma;
  /// the rhs gains -sigma * u on every variable, which attenuates
  /// outgoing waves inside boundary layers (the lightweight stand-in for
  /// the PML truncation the paper's FWI references use).
  void set_damping(std::vector<double> sigma_per_element);

  /// Builds damping coefficients for sponge layers of `thickness` elements
  /// on the domain faces, ramping quadratically to `sigma_max`.
  [[nodiscard]] std::vector<double> make_boundary_sponge(
      int thickness, double sigma_max) const;

 private:
  mesh::StructuredMesh mesh_;
  MaterialField<Material> materials_;
  Options options_;
  std::shared_ptr<const ReferenceElement> ref_;

  Field state_;  ///< unknown variables (paper Table 1)
  Field aux_;    ///< RK low-storage register ("auxiliaries")
  Field rhs_;    ///< volume + flux contributions
  double time_ = 0.0;
  SourceFn source_;
  std::vector<double> damping_;  ///< empty = no sponge
};

using AcousticSolver = Solver<AcousticPhysics>;
using ElasticSolver = Solver<ElasticPhysics>;

}  // namespace wavepim::dg
