#include "dg/operators.h"

#include "common/error.h"

namespace wavepim::dg {

void differentiate(const ReferenceElement& ref, mesh::Axis axis,
                   std::span<const float> u, std::span<float> du,
                   float scale) {
  const int n1d = ref.n1d();
  WAVEPIM_ASSERT(u.size() == static_cast<std::size_t>(ref.num_nodes()) &&
                     du.size() == u.size(),
                 "slice size mismatch");
  const auto& d = ref.basis().d_matrix();
  const int stride = ref.stride(axis);
  for (int start : ref.line_starts(axis)) {
    for (int i = 0; i < n1d; ++i) {
      double acc = 0.0;
      const double* drow = &d[static_cast<std::size_t>(i) * n1d];
      for (int j = 0; j < n1d; ++j) {
        acc += drow[j] * u[start + j * stride];
      }
      du[start + i * stride] = static_cast<float>(acc) * scale;
    }
  }
}

}  // namespace wavepim::dg
