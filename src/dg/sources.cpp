#include "dg/sources.h"

#include <array>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.h"

namespace wavepim::dg {

using std::numbers::pi;

double ricker(double t, double peak_frequency, double delay) {
  const double arg = pi * peak_frequency * (t - delay);
  const double a = arg * arg;
  return (1.0 - 2.0 * a) * std::exp(-a);
}

namespace {

/// Physical coordinates of node `n` of element `e`.
std::array<double, 3> node_position(const mesh::StructuredMesh& mesh,
                                    const ReferenceElement& ref,
                                    std::size_t e, int n) {
  const auto corner = mesh.corner_of(static_cast<mesh::ElementId>(e));
  const auto xi = ref.coords_of(n);
  const double h = mesh.element_size();
  return {corner[0] + 0.5 * (xi[0] + 1.0) * h,
          corner[1] + 0.5 * (xi[1] + 1.0) * h,
          corner[2] + 0.5 * (xi[2] + 1.0) * h};
}

const dg::AcousticMaterial& require_homogeneous(
    const MaterialField<AcousticMaterial>& mats) {
  const auto& m0 = mats.at(0);
  for (std::size_t e = 1; e < mats.size(); ++e) {
    const auto& m = mats.at(e);
    WAVEPIM_REQUIRE(m.kappa == m0.kappa && m.rho == m0.rho,
                    "plane-wave init requires a homogeneous medium");
  }
  return m0;
}

}  // namespace

void init_acoustic_plane_wave(AcousticSolver& solver, mesh::Axis axis,
                              int modes) {
  WAVEPIM_REQUIRE(solver.mesh().boundary() == mesh::Boundary::Periodic,
                  "plane wave requires a periodic domain");
  const auto& m = require_homogeneous(solver.materials());
  const double z = m.impedance();
  const double k = 2.0 * pi * modes / solver.mesh().extent();
  const auto& ref = solver.reference();
  const std::size_t va = AcousticPhysics::Vx + mesh::index_of(axis);

  Field& u = solver.state();
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto x = node_position(solver.mesh(), ref, e, n);
      const double p = std::sin(k * x[mesh::index_of(axis)]);
      u.value(e, AcousticPhysics::P, n) = static_cast<float>(p);
      u.value(e, va, n) = static_cast<float>(p / z);
    }
  }
}

void sample_acoustic_plane_wave(const AcousticSolver& solver, mesh::Axis axis,
                                int modes, double t, Field& expected) {
  const auto& m = solver.materials().at(0);
  const double c = m.sound_speed();
  const double k = 2.0 * pi * modes / solver.mesh().extent();
  const auto& ref = solver.reference();
  for (std::size_t e = 0; e < expected.num_elements(); ++e) {
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto x = node_position(solver.mesh(), ref, e, n);
      expected.value(e, AcousticPhysics::P, n) =
          static_cast<float>(std::sin(k * (x[mesh::index_of(axis)] - c * t)));
    }
  }
}

void init_elastic_plane_p_wave(ElasticSolver& solver, int modes) {
  WAVEPIM_REQUIRE(solver.mesh().boundary() == mesh::Boundary::Periodic,
                  "plane wave requires a periodic domain");
  const auto& m = solver.materials().at(0);
  const double zp = m.zp();
  const double ratio = m.lambda / (m.lambda + 2.0 * m.mu);
  const double k = 2.0 * pi * modes / solver.mesh().extent();
  const auto& ref = solver.reference();

  Field& u = solver.state();
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto x = node_position(solver.mesh(), ref, e, n);
      const double vx = std::sin(k * x[0]);
      const double sxx = -zp * vx;
      u.value(e, ElasticPhysics::Vx, n) = static_cast<float>(vx);
      u.value(e, ElasticPhysics::Sxx, n) = static_cast<float>(sxx);
      u.value(e, ElasticPhysics::Syy, n) = static_cast<float>(ratio * sxx);
      u.value(e, ElasticPhysics::Szz, n) = static_cast<float>(ratio * sxx);
    }
  }
}

void init_elastic_plane_s_wave(ElasticSolver& solver, int modes) {
  WAVEPIM_REQUIRE(solver.mesh().boundary() == mesh::Boundary::Periodic,
                  "plane wave requires a periodic domain");
  const auto& m = solver.materials().at(0);
  WAVEPIM_REQUIRE(m.mu > 0.0, "S-wave requires shear stiffness");
  const double zs = m.zs();
  const double k = 2.0 * pi * modes / solver.mesh().extent();
  const auto& ref = solver.reference();

  Field& u = solver.state();
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto x = node_position(solver.mesh(), ref, e, n);
      const double vy = std::sin(k * x[0]);
      u.value(e, ElasticPhysics::Vy, n) = static_cast<float>(vy);
      u.value(e, ElasticPhysics::Sxy, n) = static_cast<float>(-zs * vy);
    }
  }
}

void init_acoustic_gaussian_pulse(AcousticSolver& solver,
                                  const std::array<double, 3>& center,
                                  double sigma, double amplitude) {
  WAVEPIM_REQUIRE(sigma > 0.0, "pulse width must be positive");
  const auto& ref = solver.reference();
  Field& u = solver.state();
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto x = node_position(solver.mesh(), ref, e, n);
      const double r2 = (x[0] - center[0]) * (x[0] - center[0]) +
                        (x[1] - center[1]) * (x[1] - center[1]) +
                        (x[2] - center[2]) * (x[2] - center[2]);
      u.value(e, AcousticPhysics::P, n) +=
          static_cast<float>(amplitude * std::exp(-r2 / (sigma * sigma)));
    }
  }
}

PointSource::PointSource(const AcousticSolver& solver,
                         const std::array<double, 3>& position,
                         double peak_frequency, double delay, double amplitude)
    : peak_frequency_(peak_frequency), delay_(delay) {
  const auto& mesh = solver.mesh();
  const auto& ref = solver.reference();
  element_ = mesh.element_containing(position[0], position[1], position[2]);

  // Nearest node inside the owning element.
  double best = std::numeric_limits<double>::max();
  node_ = 0;
  for (int n = 0; n < ref.num_nodes(); ++n) {
    const auto x = node_position(mesh, ref, element_, n);
    const double d2 = (x[0] - position[0]) * (x[0] - position[0]) +
                      (x[1] - position[1]) * (x[1] - position[1]) +
                      (x[2] - position[2]) * (x[2] - position[2]);
    if (d2 < best) {
      best = d2;
      node_ = static_cast<std::size_t>(n);
    }
  }
  // Delta-function normalisation: divide by the nodal quadrature volume so
  // the injected impulse is mesh-independent.
  const double jac = std::pow(mesh.element_size() / 2.0, 3);
  const double nodal_volume =
      ref.weight_of(static_cast<int>(node_)) * jac;
  scaled_amplitude_ = amplitude / nodal_volume;
}

void PointSource::operator()(Field& rhs, double t) const {
  rhs.value(element_, AcousticPhysics::P, node_) += static_cast<float>(
      scaled_amplitude_ * ricker(t, peak_frequency_, delay_));
}

}  // namespace wavepim::dg
