#pragma once

#include <cmath>
#include <vector>

#include "common/error.h"

namespace wavepim::dg {

/// Acoustic medium: bulk modulus K and density P in the paper's Table 1.
struct AcousticMaterial {
  double kappa = 1.0;  ///< bulk modulus K
  double rho = 1.0;    ///< density P

  [[nodiscard]] double sound_speed() const { return std::sqrt(kappa / rho); }
  /// Acoustic impedance Z = rho * c used by the upwind flux.
  [[nodiscard]] double impedance() const { return std::sqrt(kappa * rho); }
  /// Fastest signal speed (CFL).
  [[nodiscard]] double max_wave_speed() const { return sound_speed(); }
};

/// Isotropic elastic medium: Lamé parameters lambda, mu and density.
struct ElasticMaterial {
  double lambda = 1.0;
  double mu = 1.0;
  double rho = 1.0;

  [[nodiscard]] double cp() const {
    return std::sqrt((lambda + 2.0 * mu) / rho);
  }
  [[nodiscard]] double cs() const { return std::sqrt(mu / rho); }
  /// P- and S-wave impedances used by the Riemann flux.
  [[nodiscard]] double zp() const { return rho * cp(); }
  [[nodiscard]] double zs() const { return rho * cs(); }
  [[nodiscard]] double max_wave_speed() const { return cp(); }
};

/// Per-element constant material, as assumed by the paper ("we consider
/// constant materials within an element", §5.1).
template <typename Material>
class MaterialField {
 public:
  MaterialField(std::size_t num_elements, Material uniform)
      : materials_(num_elements, uniform) {}

  [[nodiscard]] std::size_t size() const { return materials_.size(); }
  [[nodiscard]] const Material& at(std::size_t e) const {
    WAVEPIM_REQUIRE(e < materials_.size(), "element id out of range");
    return materials_[e];
  }
  void set(std::size_t e, const Material& m) {
    WAVEPIM_REQUIRE(e < materials_.size(), "element id out of range");
    materials_[e] = m;
  }

  [[nodiscard]] double max_wave_speed() const {
    double c = 0.0;
    for (const auto& m : materials_) {
      c = std::max(c, m.max_wave_speed());
    }
    return c;
  }

 private:
  std::vector<Material> materials_;
};

}  // namespace wavepim::dg
