#pragma once

#include <span>

#include "dg/reference_element.h"
#include "mesh/face.h"

namespace wavepim::dg {

/// Applies the 1D differentiation matrix along `axis` of a nodal slice:
/// du[n] = scale * sum_j D[i(n)][j] u[line(n, j)], where scale carries the
/// reference-to-physical Jacobian (2/h on a uniform mesh).
///
/// This is the "dot-product between a subset of the element's nodes and a
/// derivative vector" the paper describes for Volume (footnote 2b).
void differentiate(const ReferenceElement& ref, mesh::Axis axis,
                   std::span<const float> u, std::span<float> du,
                   float scale);

}  // namespace wavepim::dg
