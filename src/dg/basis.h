#pragma once

#include <vector>

#include "dg/gll.h"

namespace wavepim::dg {

/// Lagrange nodal basis on the GLL points of one dimension.
///
/// Provides the differentiation matrix D with D[i][j] = l_j'(x_i) — the
/// paper's "dshape" constants (Table 1) — computed with barycentric
/// weights for numerical stability.
class Basis1d {
 public:
  explicit Basis1d(const GllRule& rule);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] const std::vector<double>& points() const { return points_; }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  /// Row-major n×n differentiation matrix entry l_j'(x_i).
  [[nodiscard]] double d(int i, int j) const { return d_[i * n_ + j]; }
  [[nodiscard]] const std::vector<double>& d_matrix() const { return d_; }

  /// Evaluates the j-th Lagrange cardinal function at arbitrary x.
  [[nodiscard]] double lagrange(int j, double x) const;

  /// Interpolates nodal values to arbitrary x.
  [[nodiscard]] double interpolate(const std::vector<double>& nodal,
                                   double x) const;

 private:
  int n_;
  std::vector<double> points_;
  std::vector<double> weights_;
  std::vector<double> bary_;  // barycentric weights
  std::vector<double> d_;     // differentiation matrix, row-major
};

}  // namespace wavepim::dg
