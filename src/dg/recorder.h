#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dg/fields.h"
#include "dg/reference_element.h"
#include "mesh/structured_mesh.h"

namespace wavepim::dg {

/// Records the time history of one field variable at a set of physical
/// receiver positions — the seismogram of a survey. Doubles as the data
/// source for time-reversed injection (the adjoint/imaging building block
/// of full-waveform inversion the paper's introduction motivates).
class Seismogram {
 public:
  Seismogram(const mesh::StructuredMesh& mesh, const ReferenceElement& ref,
             std::size_t var);

  /// Adds a receiver at the node nearest to `position`; returns its index.
  std::size_t add_receiver(const std::array<double, 3>& position);

  [[nodiscard]] std::size_t num_receivers() const {
    return receivers_.size();
  }

  /// Samples the tracked variable of every receiver from `state`.
  void record(const Field& state);

  [[nodiscard]] std::size_t num_samples() const { return samples_; }

  /// Trace of one receiver (sample-major).
  [[nodiscard]] std::vector<float> trace(std::size_t receiver) const;

  /// Value of receiver `r` at sample `s`.
  [[nodiscard]] float at(std::size_t receiver, std::size_t sample) const;

  /// Element/node a receiver snapped to.
  struct Location {
    std::size_t element;
    std::size_t node;
  };
  [[nodiscard]] const Location& location(std::size_t receiver) const {
    return receivers_[receiver];
  }

  /// Adds the (optionally time-reversed) recorded traces into `rhs` at
  /// the receiver nodes, scaled by `amplitude` — turning the recording
  /// into a source for reverse-time imaging. `sample` indexes the trace.
  void inject(Field& rhs, std::size_t sample, bool reversed,
              double amplitude) const;

 private:
  const mesh::StructuredMesh* mesh_;
  const ReferenceElement* ref_;
  std::size_t var_;
  std::vector<Location> receivers_;
  std::vector<float> data_;  ///< sample-major: data_[s * R + r]
  std::size_t samples_ = 0;
};

/// Nearest (element, node) pair to a physical position.
Seismogram::Location locate_node(const mesh::StructuredMesh& mesh,
                                 const ReferenceElement& ref,
                                 const std::array<double, 3>& position);

}  // namespace wavepim::dg
