#include "dg/recorder.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace wavepim::dg {

Seismogram::Location locate_node(const mesh::StructuredMesh& mesh,
                                 const ReferenceElement& ref,
                                 const std::array<double, 3>& position) {
  const auto element =
      mesh.element_containing(position[0], position[1], position[2]);
  const auto corner = mesh.corner_of(element);
  const double h = mesh.element_size();

  double best = std::numeric_limits<double>::max();
  std::size_t best_node = 0;
  for (int n = 0; n < ref.num_nodes(); ++n) {
    const auto xi = ref.coords_of(n);
    double d2 = 0.0;
    for (std::size_t d = 0; d < 3; ++d) {
      const double x = corner[d] + 0.5 * (xi[d] + 1.0) * h;
      d2 += (x - position[d]) * (x - position[d]);
    }
    if (d2 < best) {
      best = d2;
      best_node = static_cast<std::size_t>(n);
    }
  }
  return {element, best_node};
}

Seismogram::Seismogram(const mesh::StructuredMesh& mesh,
                       const ReferenceElement& ref, std::size_t var)
    : mesh_(&mesh), ref_(&ref), var_(var) {}

std::size_t Seismogram::add_receiver(const std::array<double, 3>& position) {
  WAVEPIM_REQUIRE(samples_ == 0, "add receivers before recording");
  receivers_.push_back(locate_node(*mesh_, *ref_, position));
  return receivers_.size() - 1;
}

void Seismogram::record(const Field& state) {
  WAVEPIM_REQUIRE(!receivers_.empty(), "no receivers registered");
  for (const auto& r : receivers_) {
    data_.push_back(state.value(r.element, var_, r.node));
  }
  ++samples_;
}

std::vector<float> Seismogram::trace(std::size_t receiver) const {
  WAVEPIM_REQUIRE(receiver < receivers_.size(), "receiver out of range");
  std::vector<float> t(samples_);
  for (std::size_t s = 0; s < samples_; ++s) {
    t[s] = data_[s * receivers_.size() + receiver];
  }
  return t;
}

float Seismogram::at(std::size_t receiver, std::size_t sample) const {
  WAVEPIM_REQUIRE(receiver < receivers_.size() && sample < samples_,
                  "seismogram index out of range");
  return data_[sample * receivers_.size() + receiver];
}

void Seismogram::inject(Field& rhs, std::size_t sample, bool reversed,
                        double amplitude) const {
  WAVEPIM_REQUIRE(sample < samples_, "sample out of range");
  const std::size_t s = reversed ? samples_ - 1 - sample : sample;
  for (std::size_t r = 0; r < receivers_.size(); ++r) {
    rhs.value(receivers_[r].element, var_, receivers_[r].node) +=
        static_cast<float>(amplitude * at(r, s));
  }
}

}  // namespace wavepim::dg
