#include "dg/gll.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace wavepim::dg {

double legendre(int n, double x) {
  WAVEPIM_REQUIRE(n >= 0, "polynomial degree must be non-negative");
  if (n == 0) {
    return 1.0;
  }
  double p_prev = 1.0;
  double p = x;
  for (int k = 2; k <= n; ++k) {
    const double p_next =
        ((2 * k - 1) * x * p - (k - 1) * p_prev) / static_cast<double>(k);
    p_prev = p;
    p = p_next;
  }
  return p;
}

GllRule gll_rule(int n) {
  WAVEPIM_REQUIRE(n >= 2 && n <= 32, "GLL rule supports 2..32 points");
  const int N = n - 1;  // polynomial order

  GllRule rule;
  rule.points.resize(n);
  rule.weights.resize(n);

  // Chebyshev–Gauss–Lobatto initial guess, then Newton iteration on the
  // derivative condition (von Winckel's classic lglnodes scheme).
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) {
    x[i] = -std::cos(std::numbers::pi * i / N);
  }

  std::vector<double> p_n(n);    // P_N(x_i)
  std::vector<double> p_nm1(n);  // P_{N-1}(x_i)
  for (int iter = 0; iter < 100; ++iter) {
    double max_delta = 0.0;
    for (int i = 0; i < n; ++i) {
      // Evaluate P_{N-1} and P_N by recurrence.
      double pm = 1.0;
      double pc = x[i];
      for (int k = 2; k <= N; ++k) {
        const double pn = ((2 * k - 1) * x[i] * pc - (k - 1) * pm) / k;
        pm = pc;
        pc = pn;
      }
      p_n[i] = pc;
      p_nm1[i] = pm;
      const double delta = (x[i] * pc - pm) / ((N + 1) * pc);
      x[i] -= delta;
      max_delta = std::max(max_delta, std::fabs(delta));
    }
    if (max_delta < 1e-15) {
      break;
    }
  }
  // Pin endpoints exactly.
  x[0] = -1.0;
  x[n - 1] = 1.0;

  for (int i = 0; i < n; ++i) {
    // Recompute P_N at the converged nodes for the weight formula.
    const double pn = legendre(N, x[i]);
    rule.points[i] = x[i];
    rule.weights[i] = 2.0 / (N * (N + 1) * pn * pn);
  }
  return rule;
}

}  // namespace wavepim::dg
