#pragma once

#include <array>
#include <cstddef>

#include "dg/material.h"
#include "mesh/face.h"

namespace wavepim::dg {

/// Numerical flux choice at element interfaces.
///
/// `Central` averages the traces (energy-conservative); `Upwind` solves the
/// interface Riemann problem with impedances (dissipative) — the paper's
/// "Riemann flux solver".
enum class FluxType { Central, Upwind };

const char* to_string(FluxType f);

/// Acoustic wave physics (Eq. 1 in the paper):
///   dp/dt + kappa * div v = 0
///   dv/dt + (1/rho) grad p = 0
/// Four variables per node: p, vx, vy, vz.
struct AcousticPhysics {
  static constexpr std::size_t kNumVars = 4;
  enum Var : std::size_t { P = 0, Vx = 1, Vy = 2, Vz = 3 };
  using Material = AcousticMaterial;
  static constexpr const char* kName = "acoustic";

  /// Adds the volume contribution of derivatives along `axis` to rhs:
  /// `deriv[v]` holds d(var v)/d(axis) at `count` nodes.
  static void accumulate_volume(mesh::Axis axis, const Material& m,
                                const std::array<const float*, kNumVars>& deriv,
                                const std::array<float*, kNumVars>& rhs,
                                std::size_t count);

  /// Computes delta[v] = ((F* - F(u-)) . n)[v] for one face node; the
  /// solver subtracts lift_factor * delta from the rhs (strong form).
  /// `um`/`up` are the interior/exterior traces of all variables.
  static void flux_correction(mesh::Axis axis, int sign, FluxType flux,
                              const Material& mm, const Material& mp,
                              const float* um, const float* up, float* delta);

  /// Ghost state for a reflective (rigid-wall) boundary: p mirrored even,
  /// normal velocity mirrored odd so that v.n = 0 on the wall.
  static void reflect(mesh::Axis axis, int sign, const float* um, float* up);

  /// Energy density at one node: p^2/(2 kappa) + rho |v|^2 / 2.
  static double energy_density(const Material& m, const float* u);
};

/// Elastic wave physics (Eq. 2, velocity–stress form):
///   rho dv/dt = div sigma
///   dsigma/dt = lambda (div v) I + mu (grad v + grad v^T)
/// Nine variables per node: vx, vy, vz, sxx, syy, szz, syz, sxz, sxy.
struct ElasticPhysics {
  static constexpr std::size_t kNumVars = 9;
  enum Var : std::size_t {
    Vx = 0,
    Vy = 1,
    Vz = 2,
    Sxx = 3,
    Syy = 4,
    Szz = 5,
    Syz = 6,
    Sxz = 7,
    Sxy = 8,
  };
  using Material = ElasticMaterial;
  static constexpr const char* kName = "elastic";

  static void accumulate_volume(mesh::Axis axis, const Material& m,
                                const std::array<const float*, kNumVars>& deriv,
                                const std::array<float*, kNumVars>& rhs,
                                std::size_t count);

  static void flux_correction(mesh::Axis axis, int sign, FluxType flux,
                              const Material& mm, const Material& mp,
                              const float* um, const float* up, float* delta);

  /// Ghost state for a reflective (traction-free / free-surface) boundary.
  static void reflect(mesh::Axis axis, int sign, const float* um, float* up);

  /// Energy density: kinetic rho|v|^2/2 plus strain energy sigma:eps/2.
  static double energy_density(const Material& m, const float* u);

  /// Voigt index of sigma_{ia} for row i and column a (both 0..2).
  static constexpr std::size_t sigma_var(std::size_t i, std::size_t a) {
    // Symmetric: (0,0)=Sxx (1,1)=Syy (2,2)=Szz (1,2)=Syz (0,2)=Sxz (0,1)=Sxy
    constexpr std::size_t map[3][3] = {
        {Sxx, Sxy, Sxz}, {Sxy, Syy, Syz}, {Sxz, Syz, Szz}};
    return map[i][a];
  }
};

}  // namespace wavepim::dg
