#pragma once

#include <iosfwd>
#include <string>

#include "dg/fields.h"
#include "dg/reference_element.h"
#include "mesh/structured_mesh.h"

namespace wavepim::dg {

/// Field export for visualisation and post-processing.

/// Writes one variable on the plane of nodes nearest to `coordinate`
/// along `axis` as CSV rows "x,y,z,value". Deterministic ordering
/// (element-major, node-minor).
void write_slice_csv(std::ostream& os, const mesh::StructuredMesh& mesh,
                     const ReferenceElement& ref, const Field& field,
                     std::size_t var, mesh::Axis axis, double coordinate);

/// Writes the whole nodal field as a legacy-VTK unstructured point cloud
/// ("POLYDATA" points + one scalar array per variable). Loadable by
/// ParaView/VisIt.
void write_vtk(std::ostream& os, const mesh::StructuredMesh& mesh,
               const ReferenceElement& ref, const Field& field,
               const std::vector<std::string>& var_names);

/// Convenience wrappers writing to a file path.
void write_slice_csv_file(const std::string& path,
                          const mesh::StructuredMesh& mesh,
                          const ReferenceElement& ref, const Field& field,
                          std::size_t var, mesh::Axis axis,
                          double coordinate);
void write_vtk_file(const std::string& path,
                    const mesh::StructuredMesh& mesh,
                    const ReferenceElement& ref, const Field& field,
                    const std::vector<std::string>& var_names);

}  // namespace wavepim::dg
