#pragma once

#include <memory>
#include <vector>

#include "pim/block.h"
#include "pim/hbm.h"
#include "pim/host.h"
#include "pim/interconnect.h"

namespace wavepim::pim {

/// One Wave-PIM chip plus its host CPU and off-chip HBM2: the platform the
/// mapping layer compiles kernels onto.
///
/// Functional block storage is allocated lazily — cost-model-only runs
/// never touch it, so a 16 GB configuration does not require 16 GB of
/// simulation memory. Functional (bit-true) execution is intended for the
/// small validation problems.
class Chip {
 public:
  explicit Chip(ChipConfig config, ArithLatency latency = {},
                BasicOpParams basic = {}, LinkParams link = {});

  [[nodiscard]] const ChipConfig& config() const { return config_; }
  [[nodiscard]] const ArithModel& arith() const { return arith_; }
  [[nodiscard]] const Interconnect& interconnect() const { return network_; }
  [[nodiscard]] const HbmModel& hbm() const { return hbm_; }
  [[nodiscard]] const HostModel& host() const { return host_; }

  /// Functional access to a block; allocates backing storage on first use.
  ///
  /// Thread safety: concurrent calls for *already-allocated* ids are safe
  /// (each returns an independent Block). Allocation itself is not
  /// synchronised — parallel executors must `ensure_blocks` up front.
  [[nodiscard]] Block& block(std::uint32_t id);

  /// Allocates blocks [0, count) eagerly so subsequent `block()` calls are
  /// safe from concurrent workers.
  void ensure_blocks(std::uint32_t count);

  /// Returns the chip to its just-constructed state so a pool can hand it
  /// to the next tenant: every allocated block is destroyed (their
  /// FloatArena slots go back to the process free list) and the
  /// allocation count is cleared. Any Block* a previous tenant's
  /// residency table still holds becomes dangling — destroy the tenant
  /// simulation before recycling its chip.
  void reset();

  [[nodiscard]] bool block_allocated(std::uint32_t id) const;
  [[nodiscard]] std::size_t num_allocated_blocks() const {
    return num_allocated_;
  }

  /// Static power of the chip (Table 3 composition, excludes host & HBM).
  [[nodiscard]] double static_power_w() const;

  /// Sums and clears the ledgers of all allocated blocks, returning
  /// {max block time, total energy} — the aggregation for one parallel
  /// phase across blocks. Blocks are visited in ascending id order, so the
  /// floating-point energy total is deterministic regardless of how many
  /// workers executed the phase.
  struct PhaseCost {
    Seconds critical_path;
    Seconds busiest_block;
    Joules energy;
  };
  PhaseCost drain_phase();

 private:
  ChipConfig config_;
  ArithModel arith_;
  Interconnect network_;
  HbmModel hbm_;
  HostModel host_;
  /// Indexed by block id; null until first touched. Only the pointers live
  /// here, so even a 16 GB configuration costs ~1 MB until blocks are used.
  std::vector<std::unique_ptr<Block>> blocks_;
  std::size_t num_allocated_ = 0;
};

}  // namespace wavepim::pim
