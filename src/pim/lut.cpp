#include "pim/lut.h"

#include <cmath>

#include "common/error.h"

namespace wavepim::pim {

LookupTable::LookupTable(std::uint32_t block_id,
                         std::span<const float> contents, Block& storage)
    : block_id_(block_id), size_(contents.size()) {
  WAVEPIM_REQUIRE(!contents.empty(), "LUT must have at least one entry");
  WAVEPIM_REQUIRE(contents.size() <=
                      static_cast<std::size_t>(Block::kRows) * Block::kWords,
                  "LUT exceeds one memory block");
  storage.reset_cost();
  for (std::size_t i = 0; i < contents.size(); i += Block::kWords) {
    const std::size_t n = std::min<std::size_t>(Block::kWords,
                                                contents.size() - i);
    storage.write_row(static_cast<std::uint32_t>(i / Block::kWords), 0,
                      contents.subspan(i, n));
  }
  load_cost_ = storage.consumed();
}

float LookupTable::value_at(std::uint32_t index, const Block& storage) const {
  WAVEPIM_REQUIRE(index < size_, "LUT index out of range");
  return storage.at(index / Block::kWords, index % Block::kWords);
}

float execute_lut(const LutInstructionFields& fields, Block& compute,
                  std::uint32_t compute_block_id, Block& lut_storage,
                  const LookupTable& table, const Interconnect& interconnect) {
  WAVEPIM_REQUIRE(fields.lut_block_id == table.block_id(),
                  "instruction does not target this table");

  // R_1: fetch the 32-bit index from the compute block.
  float index_word = 0.0f;
  compute.read_row(fields.row_id, fields.offset_s, {&index_word, 1});
  WAVEPIM_REQUIRE(index_word >= 0.0f,
                  "LUT index generated in-block must be non-negative");
  const auto index = static_cast<std::uint32_t>(std::lround(index_word));

  // R_2: fetch the content from the LUT block.
  float content = 0.0f;
  lut_storage.read_row(index / Block::kWords, index % Block::kWords,
                       {&content, 1});

  // Inter-block leg: one word from the LUT block to the compute block.
  const Transfer hop{.src_block = table.block_id(),
                     .dst_block = compute_block_id,
                     .words = 1};
  if (hop.src_block != hop.dst_block) {
    compute.charge({interconnect.isolated_latency(hop),
                    interconnect.transfer_energy(hop)});
  }

  // W_1: store the content at the destination offset.
  compute.write_row(fields.row_id, fields.offset_d, {&content, 1});
  return content;
}

}  // namespace wavepim::pim
