#include "pim/word.h"

namespace wavepim::pim::word {

RowPattern classify_rows(std::span<const std::uint32_t> rows) {
  RowPattern pattern;
  pattern.start = rows.empty() ? 0 : rows.front();
  if (rows.size() < 2) {
    pattern.kind = RowPattern::Kind::Contiguous;
    pattern.stride = 1;
    return pattern;
  }
  const std::uint32_t first = rows[0];
  const std::uint32_t second = rows[1];
  if (second <= first) {
    pattern.kind = RowPattern::Kind::Indexed;
    return pattern;
  }
  const std::uint32_t stride = second - first;
  for (std::size_t i = 2; i < rows.size(); ++i) {
    if (rows[i] <= rows[i - 1] || rows[i] - rows[i - 1] != stride) {
      pattern.kind = RowPattern::Kind::Indexed;
      return pattern;
    }
  }
  pattern.kind = stride == 1 ? RowPattern::Kind::Contiguous
                             : RowPattern::Kind::Strided;
  pattern.stride = stride;
  return pattern;
}

}  // namespace wavepim::pim::word
