#include "pim/controller.h"

#include "common/error.h"

namespace wavepim::pim {

std::uint32_t LoweredProgram::add_rows(std::vector<std::uint32_t> rows) {
  row_tables.push_back(std::move(rows));
  return static_cast<std::uint32_t>(row_tables.size() - 1);
}

std::uint32_t LoweredProgram::add_values(std::vector<float> values) {
  value_tables.push_back(std::move(values));
  return static_cast<std::uint32_t>(value_tables.size() - 1);
}

std::uint64_t InstructionMix::arith_count() const {
  std::uint64_t n = 0;
  for (std::size_t op = 0; op < per_opcode.size(); ++op) {
    if (is_arith(static_cast<Opcode>(op))) {
      n += per_opcode[op];
    }
  }
  return n;
}

std::uint64_t InstructionMix::memory_count() const {
  return count(Opcode::ReadRow) + count(Opcode::WriteRow) +
         count(Opcode::BroadcastRow) + count(Opcode::GatherRows) +
         count(Opcode::MemCpy) + count(Opcode::HostLoad) +
         count(Opcode::HostStore) + count(Opcode::LutLookup);
}

InstructionMix analyze(const LoweredProgram& program) {
  InstructionMix mix;
  for (const auto& inst : program.instructions) {
    mix.per_opcode[static_cast<std::size_t>(inst.op)]++;
    ++mix.total;
  }
  return mix;
}

Controller::ExecutionResult Controller::execute(
    const LoweredProgram& program) {
  ExecutionResult result;
  std::vector<Transfer> transfers;

  auto rows_of = [&](std::uint32_t table) -> const std::vector<std::uint32_t>& {
    WAVEPIM_REQUIRE(table < program.row_tables.size(),
                    "row table reference out of range");
    return program.row_tables[table];
  };
  auto values_of = [&](std::uint32_t table) -> const std::vector<float>& {
    WAVEPIM_REQUIRE(table < program.value_tables.size(),
                    "value table reference out of range");
    return program.value_tables[table];
  };

  const auto& basic = chip_->arith().basic();
  for (const auto& inst : program.instructions) {
    Block& block = chip_->block(inst.block);
    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::BroadcastRow: {
        // Constant distribution: per-row values from the value table.
        block.scatter_rows(rows_of(inst.table_a), inst.col_dst,
                           values_of(inst.table_b), inst.word_count);
        break;
      }
      case Opcode::GatherRows:
        block.gather_rows(rows_of(inst.table_a), inst.col_a, inst.row,
                          inst.col_dst);
        break;
      case Opcode::CopyCols:
        block.copy_cols(inst.col_a, inst.col_dst, inst.row, inst.row_count);
        break;
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
        if (inst.table_a != Instruction::kNoTable) {
          block.arith_rows(inst.op, inst.col_a, inst.col_b, inst.col_dst,
                           rows_of(inst.table_a));
        } else {
          block.arith(inst.op, inst.col_a, inst.col_b, inst.col_dst,
                      inst.row, inst.row_count);
        }
        break;
      case Opcode::Fscale:
        if (inst.table_a != Instruction::kNoTable) {
          block.fscale_rows(inst.col_a, inst.col_dst, inst.imm,
                            rows_of(inst.table_a));
        } else {
          block.fscale(inst.col_a, inst.col_dst, inst.imm, inst.row,
                       inst.row_count);
        }
        break;
      case Opcode::Faxpy:
        block.faxpy(inst.col_dst, inst.col_a, inst.imm, inst.imm2, inst.row,
                    inst.row_count);
        break;
      case Opcode::MemCpy: {
        const auto& src_rows = rows_of(inst.table_a);
        const auto& dst_rows = rows_of(inst.table_b);
        WAVEPIM_REQUIRE(src_rows.size() == dst_rows.size(),
                        "memcpy row lists must match");
        Block& dst = chip_->block(inst.peer_block);
        for (std::size_t i = 0; i < src_rows.size(); ++i) {
          dst.set(dst_rows[i], inst.col_dst,
                  block.at(src_rows[i], inst.col_a));
        }
        const auto n = static_cast<double>(src_rows.size());
        block.charge({basic.t_row_read() * n, basic.e_row_access() * n});
        dst.charge({basic.t_row_write() * n, basic.e_row_access() * n});
        transfers.push_back(
            {.src_block = inst.block,
             .dst_block = inst.peer_block,
             .words = static_cast<std::uint32_t>(src_rows.size())});
        break;
      }
      case Opcode::LutLookup: {
        // Algorithm 1 cost: index read + content read + destination
        // write plus the switch leg from the LUT block.
        const Transfer hop{.src_block = inst.peer_block,
                           .dst_block = inst.block,
                           .words = 1};
        OpCost cost{basic.t_row_read() * 2.0 + basic.t_row_write(),
                    basic.e_row_access() * 3.0};
        if (hop.src_block != hop.dst_block) {
          cost += {chip_->interconnect().isolated_latency(hop),
                   chip_->interconnect().transfer_energy(hop)};
        }
        block.charge(cost);
        break;
      }
      case Opcode::ReadRow:
      case Opcode::WriteRow:
      case Opcode::HostLoad:
      case Opcode::HostStore:
        // Row I/O with no modelled payload at this level: charge only.
        block.charge({basic.t_row_read(), basic.e_row_access()});
        break;
    }
    ++result.executed;
  }

  const auto phase = chip_->drain_phase();
  result.compute = {phase.busiest_block, phase.energy};
  const auto sched = chip_->interconnect().schedule(transfers);
  result.network = {sched.makespan, sched.energy};
  return result;
}

}  // namespace wavepim::pim
