#include "pim/arith.h"

#include "common/error.h"

namespace wavepim::pim {

std::uint32_t ArithModel::cycles(Opcode op) const {
  switch (op) {
    case Opcode::Fadd:
      return latency_.fadd_cycles;
    case Opcode::Fsub:
      return latency_.fsub_cycles;
    case Opcode::Fmul:
    case Opcode::Fscale:  // multiply by an immediate held in a const column
      return latency_.fmul_cycles;
    case Opcode::Faxpy:
      // dst = a*dst + c*src: one multiply pass plus one multiply-add pass.
      return latency_.fmul_cycles + latency_.fmul_cycles +
             latency_.fadd_cycles;
    case Opcode::CopyCols:
      return latency_.copy_cycles;
    default:
      WAVEPIM_ASSERT(false, "not a row-parallel block operation");
  }
}

Seconds ArithModel::op_time(Opcode op) const {
  return basic_.t_nor * static_cast<double>(cycles(op));
}

Joules ArithModel::op_energy(Opcode op, std::uint32_t rows) const {
  // Per active row, per NOR cycle: one NOR switch event and one output
  // RESET, plus a SET amortised per produced 32-bit word (32 SETs total).
  const double per_cycle =
      basic_.e_nor.value() + basic_.e_reset.value();
  const double per_op_sets = 32.0 * basic_.e_set.value();
  const double per_row = cycles(op) * per_cycle + per_op_sets;
  return Joules(per_row * rows);
}

}  // namespace wavepim::pim
