#include "pim/arena.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define WAVEPIM_ARENA_MMAP 1
#endif

namespace wavepim::pim {
namespace {

/// One reservation covers the largest supported chip plus residency
/// backing stores with room to spare; MAP_NORESERVE keeps it virtual
/// until a slot's pages are actually touched.
constexpr std::size_t kReserveBytes = std::size_t{1} << 30;  // 1 GiB

/// Slot granularity: whole pages, so lazily-committed pages are never
/// shared between slots and the bump cursor stays 4K-aligned.
constexpr std::size_t kAlignFloats = 4096 / sizeof(float);

[[nodiscard]] std::size_t align_up(std::size_t n) {
  return (n + kAlignFloats - 1) & ~(kAlignFloats - 1);
}

/// Per-allocation gate: `WAVEPIM_WORD_ARENA=0` forces the heap path.
/// Read per call (a relaxed getenv, plan-build/construction frequency)
/// so conformance tests can flip it between simulation constructions.
[[nodiscard]] bool arena_enabled() {
  const char* env = std::getenv("WAVEPIM_WORD_ARENA");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

}  // namespace

struct FloatArena::Impl {
  std::mutex mu;
  std::size_t bump = 0;  ///< floats handed out from the cursor
  /// Exact-size free lists: block slots and backing stores come in a
  /// handful of sizes per run, so recycling by size keeps the mapping
  /// compact without a general allocator.
  std::unordered_map<std::size_t, std::vector<float*>> free_lists;
  Stats stats;
};

FloatArena::FloatArena() : impl_(new Impl) {
#if defined(WAVEPIM_ARENA_MMAP)
  void* p = ::mmap(nullptr, kReserveBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p != MAP_FAILED) {
    base_ = static_cast<float*>(p);
    capacity_floats_ = kReserveBytes / sizeof(float);
    impl_->stats.reserved_bytes = kReserveBytes;
  }
#endif
}

FloatArena& FloatArena::instance() {
  static FloatArena* arena = new FloatArena();  // leaked; see header
  return *arena;
}

FloatArena::Buffer FloatArena::allocate(std::size_t n) {
  if (base_ != nullptr && arena_enabled()) {
    const std::size_t slot = align_up(n);
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->free_lists.find(slot);
    if (it != impl_->free_lists.end() && !it->second.empty()) {
      float* p = it->second.back();
      it->second.pop_back();
      ++impl_->stats.arena_allocs;
      ++impl_->stats.recycled;
      std::memset(p, 0, n * sizeof(float));
      return Buffer(p, n, true);
    }
    if (impl_->bump + slot <= capacity_floats_) {
      float* p = base_ + impl_->bump;
      impl_->bump += slot;
      impl_->stats.bump_floats = impl_->bump;
      ++impl_->stats.arena_allocs;
      return Buffer(p, n, true);  // fresh pages are already zero
    }
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->stats.heap_allocs;
  }
  return Buffer(new float[n](), n, false);
}

void FloatArena::release(float* data, std::size_t n) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->free_lists[align_up(n)].push_back(data);
}

FloatArena::Stats FloatArena::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

FloatArena::Buffer::Buffer(Buffer&& other) noexcept
    : data_(other.data_), size_(other.size_), from_arena_(other.from_arena_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.from_arena_ = false;
}

FloatArena::Buffer& FloatArena::Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    from_arena_ = other.from_arena_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.from_arena_ = false;
  }
  return *this;
}

FloatArena::Buffer::~Buffer() { reset(); }

void FloatArena::Buffer::reset() {
  if (data_ == nullptr) {
    return;
  }
  if (from_arena_) {
    FloatArena::instance().release(data_, size_);
  } else {
    delete[] data_;
  }
  data_ = nullptr;
  size_ = 0;
  from_arena_ = false;
}

}  // namespace wavepim::pim
