#pragma once

#include <cstdint>
#include <vector>

namespace wavepim::pim {

/// Gate-level model of MAGIC-style in-crossbar logic (§2.3): memristor
/// cells hold bits, and the only compute primitive is an n-input NOR
/// executed in one crossbar step. Building arithmetic from this machine
/// grounds the ArithLatency cycle constants in first principles: every
/// adder/multiplier below reports exactly how many sequential NOR steps
/// it needed.
///
/// (The functional Block model computes on FP32 words for speed; this
/// machine is the bit-true substrate those word-level costs abstract.)
class NorMachine {
 public:
  using Cell = std::uint32_t;

  /// Allocates a fresh cell initialised to `value` (memristor SET/RESET;
  /// initialisation is not a NOR step).
  Cell alloc(bool value = false);

  [[nodiscard]] bool read(Cell c) const;
  void write(Cell c, bool value);

  /// One crossbar NOR step: dst = NOR(inputs...). Counts one step.
  Cell nor(const std::vector<Cell>& inputs);

  /// Derived gates (each built only from NOR steps).
  Cell not_gate(Cell a);            // 1 step
  Cell or_gate(Cell a, Cell b);     // 2 steps
  Cell and_gate(Cell a, Cell b);    // 3 steps
  Cell xor_gate(Cell a, Cell b);    // 5 steps

  /// Sequential NOR steps executed so far.
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  void reset_steps() { steps_ = 0; }

  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }

 private:
  std::vector<bool> cells_;
  std::uint64_t steps_ = 0;
};

/// An N-bit unsigned integer as a little-endian cell vector.
using BitVector = std::vector<NorMachine::Cell>;

/// Loads an integer into freshly allocated cells.
BitVector load_bits(NorMachine& m, std::uint64_t value, int bits);

/// Reads a bit vector back as an integer.
std::uint64_t read_bits(const NorMachine& m, const BitVector& v);

/// Ripple-carry adder built from NOR full adders; returns bits+carry
/// truncated to the input width. The classic MAGIC mapping needs ~9-12
/// NOR steps per bit.
BitVector nor_add(NorMachine& m, const BitVector& a, const BitVector& b);

/// Shift-and-add multiplier (returns 2N bits): the O(N^2) NOR cost that
/// makes in-memory multiplication ~2.5x the cost of addition per §2.3's
/// "latency ... may not be as efficient as other CMOS designs".
BitVector nor_mul(NorMachine& m, const BitVector& a, const BitVector& b);

}  // namespace wavepim::pim
