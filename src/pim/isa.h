#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "pim/params.h"

namespace wavepim::pim {

/// Opcodes of the ISA-based PIM system (§4.1). Instructions are sent from
/// the host, pre-processed by the chip decoder, and expanded into
/// micro-sequences for the target blocks.
enum class Opcode : std::uint8_t {
  Nop = 0,
  ReadRow = 1,       ///< memristor cells -> row buffer
  WriteRow = 2,      ///< row buffer -> memristor cells
  BroadcastRow = 3,  ///< replicate one row's words into a row range
  GatherRows = 4,    ///< row permutation through the row buffer
  CopyCols = 5,      ///< row-parallel column copy within a block
  Fadd = 6,          ///< row-parallel FP32 add (bit-serial NOR)
  Fsub = 7,
  Fmul = 8,
  Fscale = 9,        ///< multiply column by an immediate constant
  Faxpy = 10,        ///< dst = a*dst + imm*src (integration update)
  MemCpy = 11,       ///< inter-block transfer via H-tree/Bus
  LutLookup = 12,    ///< Fig. 4 look-up-table instruction
  HostLoad = 13,     ///< off-chip DRAM -> block rows
  HostStore = 14,    ///< block rows -> off-chip DRAM
};

const char* to_string(Opcode op);

/// True for the row-parallel arithmetic opcodes.
bool is_arith(Opcode op);

/// A decoded (typed) PIM instruction. The mapping layer builds programs of
/// these; `encode_lut`/`decode_lut` provide the paper's 64-bit wire format
/// for the LUT instruction (Fig. 4).
struct Instruction {
  Opcode op = Opcode::Nop;
  std::uint32_t block = 0;       ///< target block (global id on chip)
  std::uint32_t row = 0;         ///< first row
  std::uint32_t row_count = 1;   ///< rows covered (parallel for arith)
  std::uint8_t col_a = 0;        ///< word-column operand A / source
  std::uint8_t col_b = 0;        ///< word-column operand B
  std::uint8_t col_dst = 0;      ///< word-column destination
  std::uint32_t word_count = 1;  ///< words moved (copies / memcpy)
  std::uint32_t peer_block = 0;  ///< memcpy destination / LUT block
  float imm = 0.0f;              ///< immediate for Fscale / Faxpy
  float imm2 = 0.0f;             ///< second immediate (Faxpy)
  /// Micro-sequence side-table references (row permutations / constant
  /// vectors); UINT32_MAX when unused. See pim::LoweredProgram.
  std::uint32_t table_a = 0xFFFFFFFFu;
  std::uint32_t table_b = 0xFFFFFFFFu;

  static constexpr std::uint32_t kNoTable = 0xFFFFFFFFu;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// A program is a flat instruction list; phases are delimited by the
/// mapping layer, not the ISA.
using Program = std::vector<Instruction>;

/// The paper's 64-bit LUT instruction format (Fig. 4):
///   [63:57] opcode  [56:31] row id  [30:26] offset_s
///   [25:5]  LUT block id            [4:0]   offset_d
/// Offsets are 5 bits because a 1024-column row holds 32 FP32 words.
struct LutInstructionFields {
  std::uint8_t opcode = 0;        ///< 7 bits
  std::uint32_t row_id = 0;       ///< 26 bits
  std::uint8_t offset_s = 0;      ///< 5 bits
  std::uint32_t lut_block_id = 0; ///< 21 bits
  std::uint8_t offset_d = 0;      ///< 5 bits

  friend bool operator==(const LutInstructionFields&,
                         const LutInstructionFields&) = default;
};

/// Opcode value that marks LUT instructions on the wire.
inline constexpr std::uint8_t kLutOpcode = 0x4C;  // 'L'

std::uint64_t encode_lut(const LutInstructionFields& f);
LutInstructionFields decode_lut(std::uint64_t word);

/// Derived addresses of Algorithm 1 for a decoded LUT instruction,
/// assuming 1024x1024-bit blocks and 32-bit data.
struct LutAddresses {
  std::uint64_t index_bit_address = 0;    ///< R_1 location
  std::uint64_t content_bit_address = 0;  ///< R_2 location (given index)
  std::uint64_t dest_bit_address = 0;     ///< W_1 location
};

/// Computes R_1/W_1 addresses (content address additionally needs the
/// fetched index; pass it in).
LutAddresses lut_addresses(const LutInstructionFields& f, std::uint32_t index);

}  // namespace wavepim::pim
