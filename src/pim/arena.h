#pragma once

#include <cstddef>
#include <cstdint>

namespace wavepim::pim {

/// Process-wide storage arena for FP32 column data — one reserved,
/// lazily-committed virtual mapping that backs every pim::Block's column
/// store and the residency layer's host backing buffers, in the style of
/// a PIM simulator's up-front physical-memory reservation
/// (PhysmemInit): reserve the address range once, let the OS commit
/// pages on first touch, and recycle fixed-size slots through free
/// lists instead of paying an allocator round-trip per block.
///
/// Why it exists: batched over-capacity runs construct and destroy
/// thousands of shadow/witness blocks and slide residency windows whose
/// backing stores are reallocated per simulation; the arena turns each
/// of those into a mutex-guarded free-list pop plus a memset. Huge
/// meshes additionally stop fragmenting the heap with 132 KB block
/// slots.
///
/// Semantics the rest of the system relies on:
///  * `allocate(n)` returns an n-float buffer of ZEROS — fresh mappings
///    are zero pages, recycled slots are cleared before reuse — so it is
///    a drop-in for `std::vector<float>(n)` / `new float[n]()`.
///  * Slots are page-aligned (4 KiB). The 4K-alias stagger pim::Block
///    applies to its column base is a per-block *offset into* the slot,
///    so the coloring behaviour is unchanged.
///  * `WAVEPIM_WORD_ARENA=0` (checked per allocation, so tests can
///    toggle it between simulation constructions) routes every request
///    to a plain `new float[n]()`; the same fallback serves platforms
///    without mmap and requests that exceed the reservation. Either
///    path yields bit-identical simulation state — the arena is a
///    storage substrate, invisible to the cost model and the hashes.
///  * The singleton is intentionally leaked: buffers released from
///    thread_local destructors (the witness shadow blocks) must find
///    the arena alive at any shutdown order.
class FloatArena {
 public:
  /// Owning handle for one allocation; movable so pim::Block stays
  /// movable. Arena-backed buffers return their slot to the free list
  /// on destruction, heap-backed ones delete[].
  class Buffer {
   public:
    Buffer() = default;
    Buffer(Buffer&& other) noexcept;
    Buffer& operator=(Buffer&& other) noexcept;
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer();

    [[nodiscard]] float* data() { return data_; }
    [[nodiscard]] const float* data() const { return data_; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool from_arena() const { return from_arena_; }
    float& operator[](std::size_t i) { return data_[i]; }
    const float& operator[](std::size_t i) const { return data_[i]; }

   private:
    friend class FloatArena;
    Buffer(float* data, std::size_t size, bool from_arena)
        : data_(data), size_(size), from_arena_(from_arena) {}

    void reset();

    float* data_ = nullptr;
    std::size_t size_ = 0;
    bool from_arena_ = false;
  };

  struct Stats {
    std::uint64_t arena_allocs = 0;   ///< buffers served from the mapping
    std::uint64_t heap_allocs = 0;    ///< new[] fallback buffers
    std::uint64_t recycled = 0;       ///< arena slots reused via free list
    std::size_t reserved_bytes = 0;   ///< reserved mapping size (0 = none)
    std::size_t bump_floats = 0;      ///< floats consumed from the cursor
  };

  /// The process-wide arena (leaked; see class comment).
  static FloatArena& instance();

  /// Zero-filled n-float buffer; arena-backed when the mapping exists,
  /// the gate is on and the reservation has room, heap-backed otherwise.
  [[nodiscard]] Buffer allocate(std::size_t n);

  [[nodiscard]] Stats stats() const;
  /// Whether the reserved mapping exists on this platform/run.
  [[nodiscard]] bool mapped() const { return base_ != nullptr; }

 private:
  FloatArena();
  ~FloatArena() = delete;  // leaked singleton

  void release(float* data, std::size_t n);

  struct Impl;
  Impl* impl_;          ///< mutex + free lists + counters
  float* base_ = nullptr;
  std::size_t capacity_floats_ = 0;
};

}  // namespace wavepim::pim
