#pragma once

#include "common/units.h"
#include "pim/arith.h"

namespace wavepim::pim {

/// Off-chip HBM2 DRAM model (§7.1: 900 GB/s, 36.91 W active [34]).
///
/// Batching (Figs. 6–7) pays for staging element data between this memory
/// and the PIM blocks; the model charges bandwidth-limited time plus the
/// DRAM's active power over that window.
class HbmModel {
 public:
  explicit HbmModel(double bandwidth_bytes_per_s = 900.0e9,
                    double active_power_w = 36.91)
      : bandwidth_(bandwidth_bytes_per_s), power_(active_power_w) {}

  [[nodiscard]] double bandwidth_bytes_per_s() const { return bandwidth_; }
  [[nodiscard]] double active_power_w() const { return power_; }

  [[nodiscard]] Seconds transfer_time(Bytes bytes) const {
    return Seconds(static_cast<double>(bytes) / bandwidth_);
  }

  [[nodiscard]] OpCost transfer_cost(Bytes bytes) const {
    const Seconds t = transfer_time(bytes);
    return {t, energy_at(power_, t)};
  }

 private:
  double bandwidth_;
  double power_;
};

}  // namespace wavepim::pim
