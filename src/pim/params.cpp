#include "pim/params.h"

#include <array>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace wavepim::pim {

const char* to_string(Topology t) {
  return t == Topology::HTree ? "h-tree" : "bus";
}

bool parse_topology(const char* s, Topology& out) {
  if (std::strcmp(s, "htree") == 0 || std::strcmp(s, "h-tree") == 0) {
    out = Topology::HTree;
    return true;
  }
  if (std::strcmp(s, "bus") == 0) {
    out = Topology::Bus;
    return true;
  }
  return false;
}

const char* to_string(NetBackendKind k) {
  return k == NetBackendKind::Analytic ? "analytic" : "cycle";
}

bool parse_net_backend(const char* s, NetBackendKind& out) {
  if (std::strcmp(s, "analytic") == 0) {
    out = NetBackendKind::Analytic;
    return true;
  }
  if (std::strcmp(s, "cycle") == 0) {
    out = NetBackendKind::Cycle;
    return true;
  }
  return false;
}

NetBackendKind default_net_backend() {
  const char* env = std::getenv("WAVEPIM_NET_BACKEND");
  if (env == nullptr || *env == '\0') {
    return NetBackendKind::Analytic;
  }
  NetBackendKind kind = NetBackendKind::Analytic;
  WAVEPIM_REQUIRE(parse_net_backend(env, kind),
                  "WAVEPIM_NET_BACKEND must be analytic or cycle");
  return kind;
}

namespace {

ChipConfig make_chip(std::string name, Bytes capacity, Topology t) {
  WAVEPIM_ASSERT(capacity % ChipConfig::tile_bytes() == 0,
                 "capacity must be a whole number of tiles");
  ChipConfig c;
  c.name = std::move(name);
  c.capacity = capacity;
  c.topology = t;
  return c;
}

}  // namespace

ChipConfig chip_512mb(Topology t) {
  return make_chip("PIM-512MB", mebibytes(512), t);
}
ChipConfig chip_2gb(Topology t) { return make_chip("PIM-2GB", gibibytes(2), t); }
ChipConfig chip_8gb(Topology t) { return make_chip("PIM-8GB", gibibytes(8), t); }
ChipConfig chip_16gb(Topology t) {
  return make_chip("PIM-16GB", gibibytes(16), t);
}

std::array<ChipConfig, 4> standard_chips(Topology t) {
  return {chip_512mb(t), chip_2gb(t), chip_8gb(t), chip_16gb(t)};
}

double chip_static_power_w(const ChipConfig& config,
                           const ComponentPower& power) {
  const bool htree = config.topology == Topology::HTree;
  double tile_w;
  if (htree) {
    // Table 3's 107.13 mW covers the 85 switches of the 4-ary tree;
    // other arities scale by switch count.
    const double per_switch = power.htree_switch_total_w / 85.0;
    tile_w = power.tile_memory_w() +
             per_switch * config.htree_switches_per_tile();
  } else {
    tile_w = power.tile_w(false);
  }
  return config.num_tiles() * tile_w + power.central_controller_w +
         power.chip_overhead_w();
}

double peak_throughput_flops(const ChipConfig& config, const ArithLatency& lat,
                             const BasicOpParams& ops) {
  const double avg_cycles = 0.5 * (lat.fadd_cycles + lat.fmul_cycles);
  const double avg_latency_s = avg_cycles * ops.t_nor.value();
  return static_cast<double>(config.parallel_lanes()) / avg_latency_s;
}

}  // namespace wavepim::pim
