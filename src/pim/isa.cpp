#include "pim/isa.h"

#include "common/error.h"

namespace wavepim::pim {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::Nop:
      return "nop";
    case Opcode::ReadRow:
      return "read_row";
    case Opcode::WriteRow:
      return "write_row";
    case Opcode::BroadcastRow:
      return "broadcast_row";
    case Opcode::GatherRows:
      return "gather_rows";
    case Opcode::CopyCols:
      return "copy_cols";
    case Opcode::Fadd:
      return "fadd";
    case Opcode::Fsub:
      return "fsub";
    case Opcode::Fmul:
      return "fmul";
    case Opcode::Fscale:
      return "fscale";
    case Opcode::Faxpy:
      return "faxpy";
    case Opcode::MemCpy:
      return "memcpy";
    case Opcode::LutLookup:
      return "lut_lookup";
    case Opcode::HostLoad:
      return "host_load";
    case Opcode::HostStore:
      return "host_store";
  }
  return "?";
}

bool is_arith(Opcode op) {
  switch (op) {
    case Opcode::Fadd:
    case Opcode::Fsub:
    case Opcode::Fmul:
    case Opcode::Fscale:
    case Opcode::Faxpy:
      return true;
    default:
      return false;
  }
}

std::uint64_t encode_lut(const LutInstructionFields& f) {
  WAVEPIM_REQUIRE(f.opcode < (1u << 7), "opcode exceeds 7 bits");
  WAVEPIM_REQUIRE(f.row_id < (1u << 26), "row id exceeds 26 bits");
  WAVEPIM_REQUIRE(f.offset_s < (1u << 5), "offset_s exceeds 5 bits");
  WAVEPIM_REQUIRE(f.lut_block_id < (1u << 21), "lut block id exceeds 21 bits");
  WAVEPIM_REQUIRE(f.offset_d < (1u << 5), "offset_d exceeds 5 bits");
  return (static_cast<std::uint64_t>(f.opcode) << 57) |
         (static_cast<std::uint64_t>(f.row_id) << 31) |
         (static_cast<std::uint64_t>(f.offset_s) << 26) |
         (static_cast<std::uint64_t>(f.lut_block_id) << 5) |
         static_cast<std::uint64_t>(f.offset_d);
}

LutInstructionFields decode_lut(std::uint64_t word) {
  LutInstructionFields f;
  f.opcode = static_cast<std::uint8_t>((word >> 57) & 0x7F);
  f.row_id = static_cast<std::uint32_t>((word >> 31) & 0x3FFFFFF);
  f.offset_s = static_cast<std::uint8_t>((word >> 26) & 0x1F);
  f.lut_block_id = static_cast<std::uint32_t>((word >> 5) & 0x1FFFFF);
  f.offset_d = static_cast<std::uint8_t>(word & 0x1F);
  return f;
}

LutAddresses lut_addresses(const LutInstructionFields& f,
                           std::uint32_t index) {
  // Algorithm 1 with 1024-bit rows and 32-bit words.
  LutAddresses a;
  a.index_bit_address =
      static_cast<std::uint64_t>(f.row_id) * 1024 + f.offset_s * 32ull;
  a.content_bit_address =
      static_cast<std::uint64_t>(f.lut_block_id) * 1024 * 1024 +
      static_cast<std::uint64_t>(index) * 32;
  a.dest_bit_address =
      static_cast<std::uint64_t>(f.row_id) * 1024 + f.offset_d * 32ull;
  return a;
}

}  // namespace wavepim::pim
