#pragma once

#include <cstdint>
#include <span>

#include "pim/arena.h"
#include "pim/arith.h"

namespace wavepim::pim {

/// One 1K x 1K memristive crossbar memory block — the basic compute unit
/// of the Wave-PIM architecture (§4.1).
///
/// The block is modelled functionally at FP32 word granularity: a row
/// holds 32 words, and row-parallel arithmetic combines two word-columns
/// into a third across a row range in one (bit-serial) operation. Every
/// method both mutates the stored data and accrues the operation's
/// modelled time/energy into the block's ledger; operations within one
/// block are serial (single set of drivers), so the ledger time is the
/// block's busy time.
///
/// Storage is column-major (one contiguous kRows-float run per
/// word-column): the hot operations — row-parallel arith/fscale/faxpy,
/// column copies, gathers — walk one or two columns over a row range, so
/// the inner loops are stride-1 and vectorize. The row-buffer I/O
/// methods (write_row/read_row/broadcast) stride instead, but they run
/// once per constant distribution, not once per node per stage.
class Block {
 public:
  static constexpr std::uint32_t kRows = ChipConfig::kBlockRows;
  static constexpr std::uint32_t kWords = ChipConfig::kBlockCols /
                                          ChipConfig::kWordBits;

  explicit Block(const ArithModel* model);

  // --- Row-buffer I/O ----------------------------------------------------

  /// Writes `values` into consecutive word-columns of one row.
  void write_row(std::uint32_t row, std::uint32_t col,
                 std::span<const float> values);

  /// Reads consecutive word-columns of one row.
  void read_row(std::uint32_t row, std::uint32_t col,
                std::span<float> out);

  /// Replicates `word_count` words of `src_row` into rows
  /// [dst_begin, dst_begin+dst_count) — the constants broadcast of Fig. 5.
  void broadcast(std::uint32_t src_row, std::uint32_t col,
                 std::uint32_t word_count, std::uint32_t dst_begin,
                 std::uint32_t dst_count);

  /// Row permutation through the row buffer: row (dst_begin + i) column
  /// `dst_col` receives the value at (src_rows[i], src_col). This is the
  /// intra-block data movement of the Volume stencil gathers — the
  /// "hardware hazard" that prevents pipelining Volume (§6.3).
  void gather_rows(std::span<const std::uint32_t> src_rows,
                   std::uint32_t src_col, std::uint32_t dst_begin,
                   std::uint32_t dst_col);

  // --- Row-parallel compute ----------------------------------------------

  /// dst = a op b across rows [row_begin, row_begin+count).
  void arith(Opcode op, std::uint32_t col_a, std::uint32_t col_b,
             std::uint32_t col_dst, std::uint32_t row_begin,
             std::uint32_t count);

  /// dst = c * src (immediate constant, e.g. material or GLL weight that
  /// was broadcast into a constants column).
  void fscale(std::uint32_t col_src, std::uint32_t col_dst, float c,
              std::uint32_t row_begin, std::uint32_t count);

  /// dst = a * dst + c * src — the Integration update
  /// (k = A k + dt r fused with u += B k is issued as two Faxpy ops).
  void faxpy(std::uint32_t col_dst, std::uint32_t col_src, float a, float c,
             std::uint32_t row_begin, std::uint32_t count);

  /// Row-parallel column copy.
  void copy_cols(std::uint32_t col_src, std::uint32_t col_dst,
                 std::uint32_t row_begin, std::uint32_t count);

  // --- Row-list variants ---------------------------------------------------
  // Flux kernels act on the face-node rows only (a strided subset); the
  // hardware drives the same row-parallel operation with a row mask, so
  // time matches the contiguous variant at equal row count.

  /// dst = a op b across an explicit row set.
  void arith_rows(Opcode op, std::uint32_t col_a, std::uint32_t col_b,
                  std::uint32_t col_dst, std::span<const std::uint32_t> rows);

  /// dst = c * src across an explicit row set.
  void fscale_rows(std::uint32_t col_src, std::uint32_t col_dst, float c,
                   std::span<const std::uint32_t> rows);

  /// Writes one value per row of an explicit row set (constant
  /// distribution from the storage rows; priced as serial row writes plus
  /// one buffered read per distinct source value).
  void scatter_rows(std::span<const std::uint32_t> rows, std::uint32_t col,
                    std::span<const float> values,
                    std::uint32_t distinct_values);

  // --- Bulk column access ---------------------------------------------------
  // Contiguous storage of one word-column across all kRows rows. The
  // compiled execution engine (mapping/exec_plan) runs its resolved op
  // streams directly over these spans — one bounds check per op instead
  // of one per word — and the state loaders use them for bulk variable
  // moves. Mutating through the span bypasses the ledger by design: the
  // caller accounts the cost (batched per stream, or host-side).

  [[nodiscard]] std::span<const float> column(std::uint32_t col) const;
  [[nodiscard]] std::span<float> column(std::uint32_t col);

  /// The whole column-major storage (kWords * kRows floats; column c is
  /// the run [c * kRows, (c+1) * kRows)). The word-level execution tier
  /// (mapping/word_plan) resolves column numbers to offsets into this
  /// span at plan build, leaving zero per-op address computation; like
  /// column(), mutation bypasses the ledger and the caller charges the
  /// pre-folded stream aggregates.
  [[nodiscard]] std::span<const float> words() const {
    return {words_.data() + color_, static_cast<std::size_t>(kRows) * kWords};
  }
  [[nodiscard]] std::span<float> words() {
    return {words_.data() + color_, static_cast<std::size_t>(kRows) * kWords};
  }

  /// Bulk variable load: values[i] -> (i, col). Cost-free like set():
  /// host-side loading is priced by the estimator's batching model.
  void load_column(std::uint32_t col, std::span<const float> values);

  /// Bulk variable read-back: out[i] <- (i, col).
  void store_column(std::uint32_t col, std::span<float> out) const;

  /// Fills rows [0, count) of `col` with `v` (auxiliary zeroing on load).
  void fill_column(std::uint32_t col, float v, std::uint32_t count);

  // --- Shared cost formulas -------------------------------------------------
  // The ledger charges of gather_rows / scatter_rows, exposed so the
  // compiled execution engine can pre-fold per-stream aggregates from the
  // *same* formulas the functional methods charge — the two accountings
  // cannot drift.

  [[nodiscard]] static OpCost gather_cost(const ArithModel& model,
                                          std::size_t rows);
  [[nodiscard]] static OpCost scatter_cost(const ArithModel& model,
                                           std::size_t rows,
                                           std::uint32_t distinct_values);

  // --- Inspection / ledger -----------------------------------------------

  [[nodiscard]] float at(std::uint32_t row, std::uint32_t col) const;
  void set(std::uint32_t row, std::uint32_t col, float v);

  [[nodiscard]] const OpCost& consumed() const { return ledger_; }
  void reset_cost() { ledger_ = {}; }

  /// Adds an externally computed cost (e.g. the block-side share of an
  /// inter-block transfer) to this block's serial timeline.
  void charge(const OpCost& cost) { ledger_ += cost; }

  [[nodiscard]] const ArithModel& model() const { return *model_; }

 private:
  [[nodiscard]] std::size_t idx(std::uint32_t row, std::uint32_t col) const;

  const ArithModel* model_;
  /// Storage over-allocated by one 4 KiB page; `color_` staggers each
  /// block's base address across the page (128 B steps, round-robin per
  /// allocation). Column strides are exactly 4 KiB (kRows words), so
  /// without the stagger every block maps equal (column, row) addresses
  /// to identical page offsets — and the word tier's op-major sweep then
  /// pays a 4K-alias store-to-load stall on every element. The color is
  /// invisible to the logical layout: words()/column() start at the
  /// colored base and all indexing is relative to it. The slot itself
  /// comes from the process-wide FloatArena (mmap-backed, recycled
  /// across block lifetimes; plain new[] when the arena is disabled or
  /// unavailable) — the stagger is an offset into the slot either way.
  FloatArena::Buffer words_;
  std::size_t color_ = 0;
  OpCost ledger_;
};

}  // namespace wavepim::pim
