#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pim/arith.h"
#include "pim/params.h"

namespace wavepim::pim {

/// One inter-block transfer request (§4.2): `words` 32-bit words from the
/// row/column buffer of `src_block` to `dst_block`. Block ids are global
/// on the chip; the tile is id / 256.
struct Transfer {
  std::uint32_t src_block = 0;
  std::uint32_t dst_block = 0;
  std::uint32_t words = 0;
};

/// Per-link aggregates of one scheduled batch, produced by the cycle
/// backend (`has_link_stats` below). "Link" means one contended resource
/// of the fabric: an H-tree switch or a tile's bus switch.
struct LinkStats {
  std::uint32_t links_used = 0;  ///< resources that carried any traffic
  /// Busy-time fraction of the busiest link over the batch makespan,
  /// normalised by its channel count: busy / (capacity * makespan).
  double max_utilization = 0.0;
  /// Mean of the same fraction over the links used.
  double mean_utilization = 0.0;
  /// Total queue wait: sum over transfers of (start time - arrival). All
  /// transfers of a batch arrive together, so this is the FIFO
  /// head-of-line cost the analytic model cannot see.
  Seconds stall_time;
  /// Deepest per-link waiting queue (= the peak concurrent demand on the
  /// most oversubscribed link).
  std::uint32_t peak_queue = 0;
};

/// Result of scheduling a batch of transfers.
struct ScheduleResult {
  Seconds makespan;    ///< completion time with path contention
  Seconds serial_sum;  ///< sum of isolated latencies (no-overlap bound)
  Joules energy;
  bool has_link_stats = false;  ///< set by the cycle backend
  LinkStats links;

  [[nodiscard]] double overlap_factor() const {
    return makespan.value() > 0.0 ? serial_sum.value() / makespan.value()
                                  : 1.0;
  }
};

class Interconnect;

/// Timing backend: prices one phase's transfer batch over the fabric's
/// shared resources. Backends are stateless (all per-batch state lives in
/// the schedule call), so the two implementations are process singletons
/// and an Interconnect just points at one.
///
/// Invariants every backend must keep (pinned by
/// tests/pim/net_backend_test.cpp):
///  - `serial_sum` is the sum of isolated latencies and `energy` the sum
///    of transfer energies — order-independent, so identical across
///    backends up to summation order.
///  - `makespan <= serial_sum` (+ one transfer's latency of slack for an
///    empty batch: both are zero).
///  - A single-transfer batch completes in its isolated latency, and a
///    batch of fully path-disjoint transfers in the max of theirs —
///    queuing can only matter when paths share a resource.
class NetBackend {
 public:
  virtual ~NetBackend() = default;

  [[nodiscard]] virtual NetBackendKind kind() const = 0;
  [[nodiscard]] virtual ScheduleResult schedule(
      const Interconnect& net, std::span<const Transfer> transfers) const = 0;
};

/// The greedy list-scheduler (the original model, default): transfers are
/// issued shortest-path-class first with a deterministic shuffle inside
/// each class, each claiming the earliest-free channel slot of every
/// switch on its path. Contention-aware but queue-free: a transfer may
/// start in a slot that frees *before* earlier-issued traffic elsewhere
/// on its path would really have let it through. Bit-identical to the
/// pre-seam `Interconnect::schedule`, so all committed baselines stand.
class AnalyticBackend final : public NetBackend {
 public:
  [[nodiscard]] NetBackendKind kind() const override {
    return NetBackendKind::Analytic;
  }
  [[nodiscard]] ScheduleResult schedule(
      const Interconnect& net,
      std::span<const Transfer> transfers) const override;
};

/// Event-driven backend: every transfer of the batch arrives at t = 0 (the
/// controller releases a phase's transfer list at once, level-ordered
/// and de-correlated by the micro-sequencer — the same release order the
/// analytic scheduler issues in) and waits in a FIFO queue at each
/// switch of its path, ordered by release. A switch with k channels
/// grants them FIFO with free-channel bypass: a transfer starts once it
/// sits within the first (capacity - busy) waiting entries of *every*
/// queue on its path — a blocked head may be overtaken, but only onto a
/// channel it is not itself waiting for (cut-through). Completions free
/// the channels and re-arm the queues. The single-channel bus
/// degenerates to strict head-of-line FIFO and collapses to
/// near-serial under flux traffic, while the fat-tree H-tree keeps its
/// subtrees draining concurrently — Fig. 14's result, derived rather
/// than assumed. Produces LinkStats (`has_link_stats`).
///
/// Determinism: start decisions are drained from a candidate pool in
/// release-rank order (a total order), so the outcome is independent of
/// which completion event exposed a candidate; completion events
/// tie-break on transfer index.
class CycleBackend final : public NetBackend {
 public:
  [[nodiscard]] NetBackendKind kind() const override {
    return NetBackendKind::Cycle;
  }
  [[nodiscard]] ScheduleResult schedule(
      const Interconnect& net,
      std::span<const Transfer> transfers) const override;
};

/// The process singleton for a backend kind.
const NetBackend& net_backend_for(NetBackendKind kind);

/// Circuit-switched inter-block interconnect of one Wave-PIM chip.
///
/// H-tree: each 256-block tile has a 4-ary switch tree (64 S0 + 16 S1 +
/// 4 S2 + 1 S3 = 85 switches, Table 3); a transfer occupies every switch
/// on its path for its whole duration, so transfers with disjoint paths
/// proceed concurrently (Fig. 3 top).
///
/// Bus: one central switch per tile; all transfers in a tile serialise
/// (Fig. 3 bottom).
///
/// Transfers that cross tiles additionally traverse a single shared
/// chip-level channel through the central controller.
///
/// The class owns the *resource model* (paths, per-switch channel
/// capacities, isolated latency/energy); *when* each transfer of a batch
/// moves is delegated to the NetBackend selected by
/// `ChipConfig::net_backend`.
class Interconnect {
 public:
  explicit Interconnect(const ChipConfig& config, LinkParams link = {});

  [[nodiscard]] Topology topology() const { return config_.topology; }
  [[nodiscard]] const ChipConfig& config() const { return config_; }
  [[nodiscard]] const LinkParams& link() const { return link_; }
  [[nodiscard]] NetBackendKind backend_kind() const {
    return config_.net_backend;
  }

  /// Number of switch hops between two blocks (same-tile paths only; the
  /// chip channel is modelled separately for cross-tile transfers).
  [[nodiscard]] std::uint32_t hop_count(std::uint32_t src,
                                        std::uint32_t dst) const;

  /// Latency of a transfer with no contention.
  [[nodiscard]] Seconds isolated_latency(const Transfer& t) const;

  /// Switch + channel energy of one transfer.
  [[nodiscard]] Joules transfer_energy(const Transfer& t) const;

  /// Prices the transfer batch through the configured backend and
  /// returns makespan/energy (plus link stats under the cycle backend,
  /// also exported as `net.link.*` trace counters).
  [[nodiscard]] ScheduleResult schedule(
      std::span<const Transfer> transfers) const;

  // --- Resource model (shared by the backends, pinned by unit tests) ----

  /// Resource ids occupied by a transfer's path. An H-tree self-transfer
  /// (src == dst) has an empty path — the row buffer moves the words
  /// without entering the switch fabric — while a bus self-transfer still
  /// claims the tile's single switch (the row buffer drives the shared
  /// medium).
  void path_resources(const Transfer& t,
                      std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::uint32_t num_resources() const;

  /// Concurrent channels of a switch: 1 for the bus's single data path,
  /// 4^level for H-tree switches (fat-tree-style link widening).
  [[nodiscard]] std::uint32_t resource_capacity(std::uint32_t resource) const;

 private:
  ChipConfig config_;
  LinkParams link_;
  const NetBackend* backend_ = nullptr;
  // Derived H-tree geometry (supports the §4.2.1 configurable arity).
  std::uint32_t shift_ = 2;              ///< log2(arity)
  std::uint32_t levels_ = 4;             ///< tree levels above the blocks
  std::uint32_t switches_per_tile_ = 85;
  std::vector<std::uint32_t> level_offset_;
};

}  // namespace wavepim::pim
