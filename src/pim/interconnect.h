#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pim/arith.h"
#include "pim/params.h"

namespace wavepim::pim {

/// One inter-block transfer request (§4.2): `words` 32-bit words from the
/// row/column buffer of `src_block` to `dst_block`. Block ids are global
/// on the chip; the tile is id / 256.
struct Transfer {
  std::uint32_t src_block = 0;
  std::uint32_t dst_block = 0;
  std::uint32_t words = 0;
};

/// Result of scheduling a batch of transfers.
struct ScheduleResult {
  Seconds makespan;    ///< completion time with path contention
  Seconds serial_sum;  ///< sum of isolated latencies (no-overlap bound)
  Joules energy;

  [[nodiscard]] double overlap_factor() const {
    return makespan.value() > 0.0 ? serial_sum.value() / makespan.value()
                                  : 1.0;
  }
};

/// Circuit-switched inter-block interconnect of one Wave-PIM chip.
///
/// H-tree: each 256-block tile has a 4-ary switch tree (64 S0 + 16 S1 +
/// 4 S2 + 1 S3 = 85 switches, Table 3); a transfer occupies every switch
/// on its path for its whole duration, so transfers with disjoint paths
/// proceed concurrently (Fig. 3 top).
///
/// Bus: one central switch per tile; all transfers in a tile serialise
/// (Fig. 3 bottom).
///
/// Transfers that cross tiles additionally traverse a single shared
/// chip-level channel through the central controller.
class Interconnect {
 public:
  explicit Interconnect(const ChipConfig& config, LinkParams link = {});

  [[nodiscard]] Topology topology() const { return config_.topology; }
  [[nodiscard]] const ChipConfig& config() const { return config_; }
  [[nodiscard]] const LinkParams& link() const { return link_; }

  /// Number of switch hops between two blocks (same-tile paths only; the
  /// chip channel is modelled separately for cross-tile transfers).
  [[nodiscard]] std::uint32_t hop_count(std::uint32_t src,
                                        std::uint32_t dst) const;

  /// Latency of a transfer with no contention.
  [[nodiscard]] Seconds isolated_latency(const Transfer& t) const;

  /// Switch + channel energy of one transfer.
  [[nodiscard]] Joules transfer_energy(const Transfer& t) const;

  /// Greedy list-schedules the transfer batch over the switch resources
  /// and returns makespan/energy. Transfers are issued in order, each at
  /// the earliest time its whole path is free.
  [[nodiscard]] ScheduleResult schedule(std::span<const Transfer> transfers) const;

 private:
  /// Resource ids occupied by a transfer's path.
  void path_resources(const Transfer& t,
                      std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::uint32_t num_resources() const;

  /// Concurrent channels of a switch: 1 for the bus's single data path,
  /// 4^level for H-tree switches (fat-tree-style link widening).
  [[nodiscard]] std::uint32_t resource_capacity(std::uint32_t resource) const;

  ChipConfig config_;
  LinkParams link_;
  // Derived H-tree geometry (supports the §4.2.1 configurable arity).
  std::uint32_t shift_ = 2;              ///< log2(arity)
  std::uint32_t levels_ = 4;             ///< tree levels above the blocks
  std::uint32_t switches_per_tile_ = 85;
  std::vector<std::uint32_t> level_offset_;
};

}  // namespace wavepim::pim
