#pragma once

#include <cstdint>

#include "common/units.h"
#include "pim/arith.h"

namespace wavepim::pim {

/// The ARM Cortex-A72 host CPU (§7.1) that sends instructions and
/// pre-processes inputs. Complicated arithmetic — square roots and
/// inverses used by the Flux material pre-processing (§5.1) — is offloaded
/// here and buffered into PIM look-up tables (§4.3).
class HostModel {
 public:
  /// `special_ops_per_s`: sustained sqrt/divide throughput of one A72
  /// core pair; `power_w` from Table 3 (3.06 W).
  explicit HostModel(double special_ops_per_s = 2.0e8,
                     double power_w = 3.06)
      : rate_(special_ops_per_s), power_(power_w) {}

  [[nodiscard]] double power_w() const { return power_; }

  /// Time to pre-process `ops` square-root/inverse operations.
  [[nodiscard]] Seconds special_ops_time(std::uint64_t ops) const {
    return Seconds(static_cast<double>(ops) / rate_);
  }

  [[nodiscard]] OpCost special_ops_cost(std::uint64_t ops) const {
    const Seconds t = special_ops_time(ops);
    return {t, energy_at(power_, t)};
  }

 private:
  double rate_;
  double power_;
};

}  // namespace wavepim::pim
