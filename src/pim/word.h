#pragma once

#include <cstdint>
#include <span>

namespace wavepim::pim::word {

/// Word-level FP32 kernels — the fast-path substrate of the `--exec=word`
/// execution tier (mapping/word_plan.h).
///
/// The functional Block model already stores FP32 words; its methods pay
/// per-op ledger pricing and per-word address checks so the bit-serial
/// cost semantics stay attached to every operation. These kernels strip
/// that fidelity down to the arithmetic itself: straight loops over raw
/// column storage, written so the compiler vectorizes them. They MUST
/// stay bit-identical to the scalar expressions in Block::arith /
/// fscale / faxpy and ExecutionPlan::run_stream — per word, the same
/// IEEE operation in the same order, no reassociation, no fused
/// multiply-add the scalar path would not emit. That contract is pinned
/// by the differential fuzz sweeps in tests/pim/arith_test.cpp (seeded
/// random operands incl. +-0, denormals, inf/NaN and overflow rounding)
/// and end-to-end by the four-tier conformance suites.
///
/// Three addressing shapes cover every compiled row list (word.cpp's
/// classify_rows picks one at plan-build time, never per step):
///  * contiguous — rows [start, start+n)
///  * strided    — rows start + i*stride (face-node subsets)
///  * indexed    — an arbitrary row list walked through a pointer
///
/// Pointers may alias only as whole columns (col_dst == col_a is legal,
/// partial overlap cannot happen — columns are disjoint contiguous
/// runs). For the arithmetic kernels every operand uses the *same* row
/// index per iteration, so whole-column aliasing carries no
/// cross-iteration dependence at all: iteration i touches index r_i
/// only, and the r_i are distinct. WAVEPIM_IVDEP asserts exactly that,
/// sparing the vectorizer its runtime overlap checks — which, at the
/// 9-27-row trip counts of a DG element, would otherwise cost more than
/// the loop body. The indexed *store* kernels (scatter, move,
/// gather_in_place's write-back) make no such promise and stay
/// pragma-free: they must execute in scalar forward order whenever the
/// row list repeats or overlaps the source.

#if defined(__clang__)
#define WAVEPIM_IVDEP _Pragma("clang loop vectorize(assume_safety)")
#elif defined(__GNUC__)
#define WAVEPIM_IVDEP _Pragma("GCC ivdep")
#else
#define WAVEPIM_IVDEP
#endif

/// Resolves the annotated function through an ifunc so AVX2 hosts run an
/// 8-lane clone of the word loops while the shipped baseline stays plain
/// x86-64. Bit-identity holds across clones: AVX2 add/sub/mul are the
/// same correctly-rounded IEEE operations as their SSE2 counterparts,
/// and the clone list deliberately excludes FMA so no multiply-add can
/// contract.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define WAVEPIM_TARGET_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define WAVEPIM_TARGET_CLONES
#endif

// --- Binary arithmetic: dst[r] = a[r] (op) b[r] ---------------------------

inline void add(float* dst, const float* a, const float* b,
                std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = a[i] + b[i];
  }
}

inline void sub(float* dst, const float* a, const float* b,
                std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = a[i] - b[i];
  }
}

inline void mul(float* dst, const float* a, const float* b,
                std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = a[i] * b[i];
  }
}

inline void add_strided(float* dst, const float* a, const float* b,
                        std::uint32_t start, std::uint32_t stride,
                        std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    dst[r] = a[r] + b[r];
  }
}

inline void sub_strided(float* dst, const float* a, const float* b,
                        std::uint32_t start, std::uint32_t stride,
                        std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    dst[r] = a[r] - b[r];
  }
}

inline void mul_strided(float* dst, const float* a, const float* b,
                        std::uint32_t start, std::uint32_t stride,
                        std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    dst[r] = a[r] * b[r];
  }
}

inline void add_indexed(float* dst, const float* a, const float* b,
                        const std::uint32_t* rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    dst[r] = a[r] + b[r];
  }
}

inline void sub_indexed(float* dst, const float* a, const float* b,
                        const std::uint32_t* rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    dst[r] = a[r] - b[r];
  }
}

inline void mul_indexed(float* dst, const float* a, const float* b,
                        const std::uint32_t* rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    dst[r] = a[r] * b[r];
  }
}

// --- Immediate forms ------------------------------------------------------

/// dst[r] = c * src[r] over [0, n).
inline void scale(float* dst, const float* src, float c, std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = c * src[i];
  }
}

inline void scale_strided(float* dst, const float* src, float c,
                          std::uint32_t start, std::uint32_t stride,
                          std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    dst[r] = c * src[r];
  }
}

inline void scale_indexed(float* dst, const float* src, float c,
                          const std::uint32_t* rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    dst[r] = c * src[r];
  }
}

/// dst[r] = a * dst[r] + c * src[r] over [0, n) — the Integration update.
inline void axpy(float* dst, const float* src, float a, float c,
                 std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = a * dst[i] + c * src[i];
  }
}

// --- Data movement --------------------------------------------------------

/// dst[i] = src[rows[i]]. Caller guarantees dst and src are different
/// columns (the common compiled case); same-column permutations go
/// through gather_in_place.
inline void gather(float* dst, const float* src, const std::uint32_t* rows,
                   std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = src[rows[i]];
  }
}

/// Same-column gather: behaves as a parallel permutation even when the
/// destination range [0, n) overlaps the source rows, staging through
/// `scratch` (caller-provided, >= n floats, reused across calls so the
/// hot path never allocates).
inline void gather_in_place(float* col, const std::uint32_t* rows,
                            std::uint32_t n, float* scratch) {
  for (std::uint32_t i = 0; i < n; ++i) {
    scratch[i] = col[rows[i]];
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    col[i] = scratch[i];
  }
}

/// dst[rows[i]] = values[i].
inline void scatter(float* dst, const std::uint32_t* rows,
                    const float* values, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[rows[i]] = values[i];
  }
}

/// dst[dst_rows[i]] = src[src_rows[i]] — inter-column (and inter-block)
/// row moves.
inline void move(float* dst, const std::uint32_t* dst_rows, const float* src,
                 const std::uint32_t* src_rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[dst_rows[i]] = src[src_rows[i]];
  }
}

// --- Row-pattern classification -------------------------------------------

/// Addressing shape of one compiled row list, resolved once at word-plan
/// build so the per-step loops never inspect indices.
struct RowPattern {
  enum class Kind : std::uint8_t { Contiguous, Strided, Indexed };

  Kind kind = Kind::Contiguous;
  std::uint32_t start = 0;
  std::uint32_t stride = 1;  ///< Strided only (ascending, >= 2)
};

/// Classifies `rows`: an empty or single-row list and any run with unit
/// ascending stride is Contiguous, a constant ascending stride >= 2 is
/// Strided, anything else (descending, irregular, repeated) is Indexed.
[[nodiscard]] RowPattern classify_rows(std::span<const std::uint32_t> rows);

}  // namespace wavepim::pim::word
