#pragma once

#include <cstdint>
#include <span>

namespace wavepim::pim::word {

/// Word-level FP32 kernels — the fast-path substrate of the `--exec=word`
/// execution tier (mapping/word_plan.h).
///
/// The functional Block model already stores FP32 words; its methods pay
/// per-op ledger pricing and per-word address checks so the bit-serial
/// cost semantics stay attached to every operation. These kernels strip
/// that fidelity down to the arithmetic itself: straight loops over raw
/// column storage, written so the compiler vectorizes them. They MUST
/// stay bit-identical to the scalar expressions in Block::arith /
/// fscale / faxpy and ExecutionPlan::run_stream — per word, the same
/// IEEE operation in the same order, no reassociation, no fused
/// multiply-add the scalar path would not emit. That contract is pinned
/// by the differential fuzz sweeps in tests/pim/arith_test.cpp (seeded
/// random operands incl. +-0, denormals, inf/NaN and overflow rounding)
/// and end-to-end by the four-tier conformance suites.
///
/// Three addressing shapes cover every compiled row list (word.cpp's
/// classify_rows picks one at plan-build time, never per step):
///  * contiguous — rows [start, start+n)
///  * strided    — rows start + i*stride (face-node subsets)
///  * indexed    — an arbitrary row list walked through a pointer
///
/// Pointers may alias only as whole columns (col_dst == col_a is legal,
/// partial overlap cannot happen — columns are disjoint contiguous
/// runs). For the arithmetic kernels every operand uses the *same* row
/// index per iteration, so whole-column aliasing carries no
/// cross-iteration dependence at all: iteration i touches index r_i
/// only, and the r_i are distinct. WAVEPIM_IVDEP asserts exactly that,
/// sparing the vectorizer its runtime overlap checks — which, at the
/// 9-27-row trip counts of a DG element, would otherwise cost more than
/// the loop body. The indexed *store* kernels (scatter, move,
/// gather_in_place's write-back) make no such promise and stay
/// pragma-free: they must execute in scalar forward order whenever the
/// row list repeats or overlaps the source.

#if defined(__clang__)
#define WAVEPIM_IVDEP _Pragma("clang loop vectorize(assume_safety)")
#elif defined(__GNUC__)
#define WAVEPIM_IVDEP _Pragma("GCC ivdep")
#else
#define WAVEPIM_IVDEP
#endif

/// Resolves the annotated function through an ifunc so AVX2 hosts run an
/// 8-lane clone of the word loops while the shipped baseline stays plain
/// x86-64. Bit-identity holds across clones: AVX2 add/sub/mul are the
/// same correctly-rounded IEEE operations as their SSE2 counterparts,
/// and the clone list deliberately excludes FMA so no multiply-add can
/// contract.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define WAVEPIM_TARGET_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define WAVEPIM_TARGET_CLONES
#endif

// --- Binary arithmetic: dst[r] = a[r] (op) b[r] ---------------------------

inline void add(float* dst, const float* a, const float* b,
                std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = a[i] + b[i];
  }
}

inline void sub(float* dst, const float* a, const float* b,
                std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = a[i] - b[i];
  }
}

inline void mul(float* dst, const float* a, const float* b,
                std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = a[i] * b[i];
  }
}

inline void add_strided(float* dst, const float* a, const float* b,
                        std::uint32_t start, std::uint32_t stride,
                        std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    dst[r] = a[r] + b[r];
  }
}

inline void sub_strided(float* dst, const float* a, const float* b,
                        std::uint32_t start, std::uint32_t stride,
                        std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    dst[r] = a[r] - b[r];
  }
}

inline void mul_strided(float* dst, const float* a, const float* b,
                        std::uint32_t start, std::uint32_t stride,
                        std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    dst[r] = a[r] * b[r];
  }
}

inline void add_indexed(float* dst, const float* a, const float* b,
                        const std::uint32_t* rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    dst[r] = a[r] + b[r];
  }
}

inline void sub_indexed(float* dst, const float* a, const float* b,
                        const std::uint32_t* rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    dst[r] = a[r] - b[r];
  }
}

inline void mul_indexed(float* dst, const float* a, const float* b,
                        const std::uint32_t* rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    dst[r] = a[r] * b[r];
  }
}

// --- Immediate forms ------------------------------------------------------

/// dst[r] = c * src[r] over [0, n).
inline void scale(float* dst, const float* src, float c, std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = c * src[i];
  }
}

inline void scale_strided(float* dst, const float* src, float c,
                          std::uint32_t start, std::uint32_t stride,
                          std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    dst[r] = c * src[r];
  }
}

inline void scale_indexed(float* dst, const float* src, float c,
                          const std::uint32_t* rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    dst[r] = c * src[r];
  }
}

/// dst[r] = a * dst[r] + c * src[r] over [0, n) — the Integration update.
inline void axpy(float* dst, const float* src, float a, float c,
                 std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = a * dst[i] + c * src[i];
  }
}

// --- Fused op pairs -------------------------------------------------------
//
// Peephole targets of the word-plan fusion pass: the probed coefficients
// emit long Fscale->Fadd (flux) and Fmul->Fadd (volume) chains whose
// intermediate lands in a scratch column and is immediately re-read as
// the second operand of an accumulate. The fused kernels keep the
// intermediate *store* — the full-chip hashes and the differential
// witness cover scratch columns, so the post-state must be identical —
// but forward the value in a register, removing the reload and halving
// the loop/dispatch count. Bit-identity with the unfused sequence holds
// whenever both ops walk the same distinct row set: iteration i then
// touches row r_i of every column exactly once, so interleaving the two
// ops per row cannot reorder any load/store pair on the same address
// beyond what the within-iteration order already fixes (mid store before
// dst store, operand loads before both). The plan verifies row
// distinctness for indexed lists before fusing.
//
// `store_mid` (default true) lets the plan elide the intermediate store
// entirely when its dead-store pass proved a later op of the SAME
// stream fully overwrites the scratch rows before anything reads them —
// state is only observed at phase end, so the elided store is
// unobservable. The arithmetic is unchanged either way.

/// Fused Fscale -> Fadd: m = c * a[r]; mid[r] = m; dst[r] = b[r] + m.
inline void scale_add(float* dst, float* mid, const float* a, const float* b,
                      float c, std::uint32_t n, bool store_mid = true) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    const float m = c * a[i];
    const float s = b[i] + m;
    if (store_mid) {
      mid[i] = m;
    }
    dst[i] = s;
  }
}

inline void scale_add_strided(float* dst, float* mid, const float* a,
                              const float* b, float c, std::uint32_t start,
                              std::uint32_t stride, std::uint32_t n,
                              bool store_mid = true) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    const float m = c * a[r];
    const float s = b[r] + m;
    if (store_mid) {
      mid[r] = m;
    }
    dst[r] = s;
  }
}

inline void scale_add_indexed(float* dst, float* mid, const float* a,
                              const float* b, float c,
                              const std::uint32_t* rows, std::uint32_t n,
                              bool store_mid = true) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    const float m = c * a[r];
    const float s = b[r] + m;
    if (store_mid) {
      mid[r] = m;
    }
    dst[r] = s;
  }
}

/// Fused Fmul -> Fadd: m = a[r] * b[r]; mid[r] = m; dst[r] = c2[r] + m.
inline void mul_add(float* dst, float* mid, const float* a, const float* b,
                    const float* c2, std::uint32_t n, bool store_mid = true) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    const float m = a[i] * b[i];
    const float s = c2[i] + m;
    if (store_mid) {
      mid[i] = m;
    }
    dst[i] = s;
  }
}

inline void mul_add_strided(float* dst, float* mid, const float* a,
                            const float* b, const float* c2,
                            std::uint32_t start, std::uint32_t stride,
                            std::uint32_t n, bool store_mid = true) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    const float m = a[r] * b[r];
    const float s = c2[r] + m;
    if (store_mid) {
      mid[r] = m;
    }
    dst[r] = s;
  }
}

inline void mul_add_indexed(float* dst, float* mid, const float* a,
                            const float* b, const float* c2,
                            const std::uint32_t* rows, std::uint32_t n,
                            bool store_mid = true) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    const float m = a[r] * b[r];
    const float s = c2[r] + m;
    if (store_mid) {
      mid[r] = m;
    }
    dst[r] = s;
  }
}

/// Fused Faxpy -> Faxpy chain (the RK Integration pair: advance the
/// stage register, then fold it into the state):
///   m = a1*d1[r] + c1*s1[r]; d1[r] = m; d2[r] = a2*d2[r] + c2*m.
inline void axpy_pair(float* d1, const float* s1, float* d2, float a1,
                      float c1, float a2, float c2, std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    const float m = a1 * d1[i] + c1 * s1[i];
    d1[i] = m;
    d2[i] = a2 * d2[i] + c2 * m;
  }
}

// --- Fused accumulation chains --------------------------------------------
//
// The flux programs are runs of K Fscale->Fadd pairs folding into ONE
// accumulator column through ONE scratch column:
//   for k: mid = imm_k * src_k;  acc = acc + mid
// The chain kernels walk rows outermost and links innermost, keeping the
// accumulator in a register across the whole run: per row, acc picks up
// the K products in link order — the exact IEEE add sequence of the
// unfused ops, since link k's Fadd reads the acc value link k-1 wrote.
// Only the LAST link's product is stored to the scratch column: the
// earlier links' stores are overwritten before anything can read them
// (sources are checked against the scratch and accumulator columns at
// fuse time, and hashes/witness observe state only at phase end).
// Row-distinctness is required — with a repeated row, the unfused pass
// order folds link k into ALL duplicate rows before link k+1, while the
// chain folds all links into one row first — and is inherited from the
// pairwise fusion obligations (regular shapes by construction, indexed
// lists verified duplicate-free).

/// K-link chain over rows [0, n): acc[r] += sum_k imm_k * src_k[r] in
/// link order; mid[r] keeps the last link's product.
inline void chain_scale_add(float* acc, float* mid,
                            const float* const* srcs, const float* imms,
                            std::uint32_t k, std::uint32_t n,
                            bool store_mid = true) {
  for (std::uint32_t i = 0; i < n; ++i) {
    float a = acc[i];
    float m = 0.0f;
    for (std::uint32_t j = 0; j < k; ++j) {
      m = imms[j] * srcs[j][i];
      a = a + m;
    }
    if (store_mid) {
      mid[i] = m;
    }
    acc[i] = a;
  }
}

inline void chain_scale_add_strided(float* acc, float* mid,
                                    const float* const* srcs,
                                    const float* imms, std::uint32_t k,
                                    std::uint32_t start, std::uint32_t stride,
                                    std::uint32_t n, bool store_mid = true) {
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    float a = acc[r];
    float m = 0.0f;
    for (std::uint32_t j = 0; j < k; ++j) {
      m = imms[j] * srcs[j][r];
      a = a + m;
    }
    if (store_mid) {
      mid[r] = m;
    }
    acc[r] = a;
  }
}

inline void chain_scale_add_indexed(float* acc, float* mid,
                                    const float* const* srcs,
                                    const float* imms, std::uint32_t k,
                                    const std::uint32_t* rows,
                                    std::uint32_t n, bool store_mid = true) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    float a = acc[r];
    float m = 0.0f;
    for (std::uint32_t j = 0; j < k; ++j) {
      m = imms[j] * srcs[j][r];
      a = a + m;
    }
    if (store_mid) {
      mid[r] = m;
    }
    acc[r] = a;
  }
}

// --- Paired chains (dual accumulator) -------------------------------------
//
// The flux programs emit the chains above in PAIRS: two back-to-back
// runs over the identical source columns, folding into two different
// accumulators with different immediates. The paired kernels load each
// source row once and feed both accumulators from the register. Each
// accumulator still evaluates its own products and adds in link order
// on the same operands, so both results are bit-identical to running
// the two chains back to back; `mid` keeps the SECOND chain's last
// product (the first chain's scratch store is dead by construction —
// the second chain overwrites the same rows — and must have been
// elided before pairing). The aliasing obligations extend the single
// chain's: both accumulators and the scratch are three distinct
// columns, disjoint from every source.

/// acc1[r] += sum_j imms1[j]*src_j[r]; acc2[r] += sum_j imms2[j]*src_j[r];
/// mid[r] keeps the second chain's last product.
inline void chain2_scale_add(float* acc1, float* acc2, float* mid,
                             const float* const* srcs, const float* imms1,
                             const float* imms2, std::uint32_t k,
                             std::uint32_t n, bool store_mid = true) {
  for (std::uint32_t i = 0; i < n; ++i) {
    float a1 = acc1[i];
    float a2 = acc2[i];
    float m = 0.0f;
    for (std::uint32_t j = 0; j < k; ++j) {
      const float v = srcs[j][i];
      a1 = a1 + imms1[j] * v;
      m = imms2[j] * v;
      a2 = a2 + m;
    }
    if (store_mid) {
      mid[i] = m;
    }
    acc1[i] = a1;
    acc2[i] = a2;
  }
}

inline void chain2_scale_add_strided(float* acc1, float* acc2, float* mid,
                                     const float* const* srcs,
                                     const float* imms1, const float* imms2,
                                     std::uint32_t k, std::uint32_t start,
                                     std::uint32_t stride, std::uint32_t n,
                                     bool store_mid = true) {
  for (std::uint32_t i = 0, r = start; i < n; ++i, r += stride) {
    float a1 = acc1[r];
    float a2 = acc2[r];
    float m = 0.0f;
    for (std::uint32_t j = 0; j < k; ++j) {
      const float v = srcs[j][r];
      a1 = a1 + imms1[j] * v;
      m = imms2[j] * v;
      a2 = a2 + m;
    }
    if (store_mid) {
      mid[r] = m;
    }
    acc1[r] = a1;
    acc2[r] = a2;
  }
}

inline void chain2_scale_add_indexed(float* acc1, float* acc2, float* mid,
                                     const float* const* srcs,
                                     const float* imms1, const float* imms2,
                                     std::uint32_t k,
                                     const std::uint32_t* rows,
                                     std::uint32_t n, bool store_mid = true) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    float a1 = acc1[r];
    float a2 = acc2[r];
    float m = 0.0f;
    for (std::uint32_t j = 0; j < k; ++j) {
      const float v = srcs[j][r];
      a1 = a1 + imms1[j] * v;
      m = imms2[j] * v;
      a2 = a2 + m;
    }
    if (store_mid) {
      mid[r] = m;
    }
    acc1[r] = a1;
    acc2[r] = a2;
  }
}

// --- Fused gather-consume -------------------------------------------------
//
// The volume programs gather a variable into a scratch column and
// multiply it against a coefficient row in the very next op. The fused
// kernels forward the gathered value in a register, removing the
// scratch reload pass. All loads of a row happen before its stores —
// the per-row order of the unfused kernels — and the fuse pass keeps
// the source column disjoint from every written column, so interleaving
// the gather with its consumer per row is order-neutral.

/// Gather + Fmul: g[i] = s[rows[i]]; dst[i] = g[i] * b[i].
inline void gather_mul(float* dst, float* g, const float* s,
                       const std::uint32_t* rows, const float* b,
                       std::uint32_t n, bool store_g = true) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const float gv = s[rows[i]];
    const float bv = b[i];
    if (store_g) {
      g[i] = gv;
    }
    dst[i] = gv * bv;
  }
}

/// Gather + Fmul + Fadd accumulate:
///   g[i] = s[rows[i]]; m = g[i] * b[i]; mid[i] = m; acc[i] += m.
inline void gather_mul_add(float* acc, float* mid, float* g, const float* s,
                           const std::uint32_t* rows, const float* b,
                           std::uint32_t n, bool store_g = true,
                           bool store_mid = true) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const float gv = s[rows[i]];
    const float bv = b[i];
    const float cv = acc[i];
    if (store_g) {
      g[i] = gv;
    }
    const float m = gv * bv;
    if (store_mid) {
      mid[i] = m;
    }
    acc[i] = cv + m;
  }
}

// --- Data movement --------------------------------------------------------

/// dst[i] = src[rows[i]]. Caller guarantees dst and src are different
/// columns (the common compiled case); same-column permutations go
/// through gather_in_place.
inline void gather(float* dst, const float* src, const std::uint32_t* rows,
                   std::uint32_t n) {
  WAVEPIM_IVDEP
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[i] = src[rows[i]];
  }
}

/// Same-column gather: behaves as a parallel permutation even when the
/// destination range [0, n) overlaps the source rows, staging through
/// `scratch` (caller-provided, >= n floats, reused across calls so the
/// hot path never allocates).
inline void gather_in_place(float* col, const std::uint32_t* rows,
                            std::uint32_t n, float* scratch) {
  for (std::uint32_t i = 0; i < n; ++i) {
    scratch[i] = col[rows[i]];
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    col[i] = scratch[i];
  }
}

/// dst[rows[i]] = values[i].
inline void scatter(float* dst, const std::uint32_t* rows,
                    const float* values, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[rows[i]] = values[i];
  }
}

/// dst[dst_rows[i]] = src[src_rows[i]] — inter-column (and inter-block)
/// row moves.
inline void move(float* dst, const std::uint32_t* dst_rows, const float* src,
                 const std::uint32_t* src_rows, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    dst[dst_rows[i]] = src[src_rows[i]];
  }
}

// --- Row-pattern classification -------------------------------------------

/// Addressing shape of one compiled row list, resolved once at word-plan
/// build so the per-step loops never inspect indices.
struct RowPattern {
  enum class Kind : std::uint8_t { Contiguous, Strided, Indexed };

  Kind kind = Kind::Contiguous;
  std::uint32_t start = 0;
  std::uint32_t stride = 1;  ///< Strided only (ascending, >= 2)
};

/// Classifies `rows`: an empty or single-row list and any run with unit
/// ascending stride is Contiguous, a constant ascending stride >= 2 is
/// Strided, anything else (descending, irregular, repeated) is Indexed.
[[nodiscard]] RowPattern classify_rows(std::span<const std::uint32_t> rows);

}  // namespace wavepim::pim::word
