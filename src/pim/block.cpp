#include "pim/block.h"

#include <atomic>
#include <vector>

#include "common/error.h"

namespace wavepim::pim {

namespace {

/// Round-robin base color, 32 steps of 128 B covering one 4 KiB page.
/// Deterministic in allocation order; simulation state is unaffected
/// (the color only shifts where in its private page each block starts).
std::size_t next_color() {
  static std::atomic<std::size_t> counter{0};
  return (counter.fetch_add(1, std::memory_order_relaxed) % 32) * 32;
}

}  // namespace

Block::Block(const ArithModel* model)
    : model_(model),
      words_(FloatArena::instance().allocate(
          static_cast<std::size_t>(kRows) * kWords + kRows)),
      color_(next_color()) {
  WAVEPIM_REQUIRE(model != nullptr, "block needs an arithmetic model");
}

// Column-major: one contiguous kRows-float run per word-column, so the
// row-parallel ops below iterate stride-1.
std::size_t Block::idx(std::uint32_t row, std::uint32_t col) const {
  WAVEPIM_REQUIRE(row < kRows && col < kWords, "block address out of range");
  return color_ + static_cast<std::size_t>(col) * kRows + row;
}

std::span<const float> Block::column(std::uint32_t col) const {
  WAVEPIM_REQUIRE(col < kWords, "block column out of range");
  return {words_.data() + color_ + static_cast<std::size_t>(col) * kRows,
          kRows};
}

std::span<float> Block::column(std::uint32_t col) {
  WAVEPIM_REQUIRE(col < kWords, "block column out of range");
  return {words_.data() + color_ + static_cast<std::size_t>(col) * kRows,
          kRows};
}

void Block::load_column(std::uint32_t col, std::span<const float> values) {
  WAVEPIM_REQUIRE(values.size() <= kRows, "column load overflows rows");
  float* dst = column(col).data();
  for (std::size_t i = 0; i < values.size(); ++i) {
    dst[i] = values[i];
  }
}

void Block::store_column(std::uint32_t col, std::span<float> out) const {
  WAVEPIM_REQUIRE(out.size() <= kRows, "column read overflows rows");
  const float* src = column(col).data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = src[i];
  }
}

void Block::fill_column(std::uint32_t col, float v, std::uint32_t count) {
  WAVEPIM_REQUIRE(count <= kRows, "column fill overflows rows");
  float* dst = column(col).data();
  for (std::uint32_t i = 0; i < count; ++i) {
    dst[i] = v;
  }
}

void Block::write_row(std::uint32_t row, std::uint32_t col,
                      std::span<const float> values) {
  WAVEPIM_REQUIRE(col + values.size() <= kWords, "row write overflows row");
  for (std::size_t i = 0; i < values.size(); ++i) {
    words_[idx(row, col + static_cast<std::uint32_t>(i))] = values[i];
  }
  ledger_ += {model_->basic().t_row_write(), model_->basic().e_row_access()};
}

void Block::read_row(std::uint32_t row, std::uint32_t col,
                     std::span<float> out) {
  WAVEPIM_REQUIRE(col + out.size() <= kWords, "row read overflows row");
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = words_[idx(row, col + static_cast<std::uint32_t>(i))];
  }
  ledger_ += {model_->basic().t_row_read(), model_->basic().e_row_access()};
}

void Block::broadcast(std::uint32_t src_row, std::uint32_t col,
                      std::uint32_t word_count, std::uint32_t dst_begin,
                      std::uint32_t dst_count) {
  WAVEPIM_REQUIRE(dst_begin + dst_count <= kRows, "broadcast overflows rows");
  WAVEPIM_REQUIRE(col + word_count <= kWords, "broadcast overflows columns");
  for (std::uint32_t w = 0; w < word_count; ++w) {
    float* column_run = words_.data() + color_ +
                        static_cast<std::size_t>(col + w) * kRows;
    const float v = column_run[src_row];
    for (std::uint32_t r = 0; r < dst_count; ++r) {
      const std::uint32_t dst = dst_begin + r;
      if (dst == src_row) {
        continue;
      }
      column_run[dst] = v;
    }
  }
  // One buffered read then one write per destination row.
  const auto& b = model_->basic();
  ledger_ += {b.t_row_read() + b.t_row_write() * static_cast<double>(dst_count),
              b.e_row_access() * static_cast<double>(1 + dst_count)};
}

OpCost Block::gather_cost(const ArithModel& model, std::size_t rows) {
  // Serial per row: read + write through the single row buffer.
  const auto& b = model.basic();
  const auto n = static_cast<double>(rows);
  return {(b.t_row_read() + b.t_row_write()) * n,
          b.e_row_access() * (2.0 * n)};
}

OpCost Block::scatter_cost(const ArithModel& model, std::size_t rows,
                           std::uint32_t distinct_values) {
  const auto& b = model.basic();
  const auto n = static_cast<double>(rows);
  return {b.t_row_read() * static_cast<double>(distinct_values) +
              b.t_row_write() * n,
          b.e_row_access() * (distinct_values + n)};
}

void Block::gather_rows(std::span<const std::uint32_t> src_rows,
                        std::uint32_t src_col, std::uint32_t dst_begin,
                        std::uint32_t dst_col) {
  WAVEPIM_REQUIRE(dst_begin + src_rows.size() <= kRows,
                  "gather overflows rows");
  // Copy values out first: the gather must behave like a parallel
  // permutation even when source and destination row ranges overlap. The
  // staging buffer is per-thread so concurrent per-element workers never
  // allocate on the hot path.
  static thread_local std::vector<float> staged;
  staged.resize(src_rows.size());
  const float* src = column(src_col).data();
  for (std::size_t i = 0; i < src_rows.size(); ++i) {
    WAVEPIM_REQUIRE(src_rows[i] < kRows, "block address out of range");
    staged[i] = src[src_rows[i]];
  }
  float* dst = column(dst_col).data() + dst_begin;
  for (std::size_t i = 0; i < src_rows.size(); ++i) {
    dst[i] = staged[i];
  }
  ledger_ += gather_cost(*model_, src_rows.size());
}

void Block::arith(Opcode op, std::uint32_t col_a, std::uint32_t col_b,
                  std::uint32_t col_dst, std::uint32_t row_begin,
                  std::uint32_t count) {
  WAVEPIM_REQUIRE(row_begin + count <= kRows, "arith overflows rows");
  const float* a = column(col_a).data() + row_begin;
  const float* b = column(col_b).data() + row_begin;
  float* dst = column(col_dst).data() + row_begin;
  switch (op) {
    case Opcode::Fadd:
      for (std::uint32_t r = 0; r < count; ++r) {
        dst[r] = a[r] + b[r];
      }
      break;
    case Opcode::Fsub:
      for (std::uint32_t r = 0; r < count; ++r) {
        dst[r] = a[r] - b[r];
      }
      break;
    case Opcode::Fmul:
      for (std::uint32_t r = 0; r < count; ++r) {
        dst[r] = a[r] * b[r];
      }
      break;
    default:
      WAVEPIM_REQUIRE(false, "unsupported two-operand arith opcode");
  }
  ledger_ += model_->op_cost(op, count);
}

void Block::fscale(std::uint32_t col_src, std::uint32_t col_dst, float c,
                   std::uint32_t row_begin, std::uint32_t count) {
  WAVEPIM_REQUIRE(row_begin + count <= kRows, "fscale overflows rows");
  const float* src = column(col_src).data() + row_begin;
  float* dst = column(col_dst).data() + row_begin;
  for (std::uint32_t r = 0; r < count; ++r) {
    dst[r] = c * src[r];
  }
  ledger_ += model_->op_cost(Opcode::Fscale, count);
}

void Block::faxpy(std::uint32_t col_dst, std::uint32_t col_src, float a,
                  float c, std::uint32_t row_begin, std::uint32_t count) {
  WAVEPIM_REQUIRE(row_begin + count <= kRows, "faxpy overflows rows");
  const float* src = column(col_src).data() + row_begin;
  float* dst = column(col_dst).data() + row_begin;
  for (std::uint32_t r = 0; r < count; ++r) {
    dst[r] = a * dst[r] + c * src[r];
  }
  ledger_ += model_->op_cost(Opcode::Faxpy, count);
}

void Block::copy_cols(std::uint32_t col_src, std::uint32_t col_dst,
                      std::uint32_t row_begin, std::uint32_t count) {
  WAVEPIM_REQUIRE(row_begin + count <= kRows, "copy overflows rows");
  const float* src = column(col_src).data() + row_begin;
  float* dst = column(col_dst).data() + row_begin;
  for (std::uint32_t r = 0; r < count; ++r) {
    dst[r] = src[r];
  }
  ledger_ += model_->op_cost(Opcode::CopyCols, count);
}

void Block::arith_rows(Opcode op, std::uint32_t col_a, std::uint32_t col_b,
                       std::uint32_t col_dst,
                       std::span<const std::uint32_t> rows) {
  const float* a = column(col_a).data();
  const float* b = column(col_b).data();
  float* dst = column(col_dst).data();
  for (std::uint32_t r : rows) {
    WAVEPIM_REQUIRE(r < kRows, "block address out of range");
    float v = 0.0f;
    switch (op) {
      case Opcode::Fadd:
        v = a[r] + b[r];
        break;
      case Opcode::Fsub:
        v = a[r] - b[r];
        break;
      case Opcode::Fmul:
        v = a[r] * b[r];
        break;
      default:
        WAVEPIM_REQUIRE(false, "unsupported two-operand arith opcode");
    }
    dst[r] = v;
  }
  ledger_ += model_->op_cost(op, static_cast<std::uint32_t>(rows.size()));
}

void Block::fscale_rows(std::uint32_t col_src, std::uint32_t col_dst, float c,
                        std::span<const std::uint32_t> rows) {
  const float* src = column(col_src).data();
  float* dst = column(col_dst).data();
  for (std::uint32_t r : rows) {
    WAVEPIM_REQUIRE(r < kRows, "block address out of range");
    dst[r] = c * src[r];
  }
  ledger_ +=
      model_->op_cost(Opcode::Fscale, static_cast<std::uint32_t>(rows.size()));
}

void Block::scatter_rows(std::span<const std::uint32_t> rows,
                         std::uint32_t col, std::span<const float> values,
                         std::uint32_t distinct_values) {
  WAVEPIM_REQUIRE(rows.size() == values.size(),
                  "scatter needs one value per row");
  float* dst = column(col).data();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    WAVEPIM_REQUIRE(rows[i] < kRows, "block address out of range");
    dst[rows[i]] = values[i];
  }
  ledger_ += scatter_cost(*model_, rows.size(), distinct_values);
}

float Block::at(std::uint32_t row, std::uint32_t col) const {
  return words_[idx(row, col)];
}

void Block::set(std::uint32_t row, std::uint32_t col, float v) {
  words_[idx(row, col)] = v;
}

}  // namespace wavepim::pim
