#include "pim/block.h"

#include "common/error.h"

namespace wavepim::pim {

Block::Block(const ArithModel* model)
    : model_(model),
      words_(static_cast<std::size_t>(kRows) * kWords, 0.0f) {
  WAVEPIM_REQUIRE(model != nullptr, "block needs an arithmetic model");
}

std::size_t Block::idx(std::uint32_t row, std::uint32_t col) const {
  WAVEPIM_REQUIRE(row < kRows && col < kWords, "block address out of range");
  return static_cast<std::size_t>(row) * kWords + col;
}

void Block::write_row(std::uint32_t row, std::uint32_t col,
                      std::span<const float> values) {
  WAVEPIM_REQUIRE(col + values.size() <= kWords, "row write overflows row");
  for (std::size_t i = 0; i < values.size(); ++i) {
    words_[idx(row, col + static_cast<std::uint32_t>(i))] = values[i];
  }
  ledger_ += {model_->basic().t_row_write(), model_->basic().e_row_access()};
}

void Block::read_row(std::uint32_t row, std::uint32_t col,
                     std::span<float> out) {
  WAVEPIM_REQUIRE(col + out.size() <= kWords, "row read overflows row");
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = words_[idx(row, col + static_cast<std::uint32_t>(i))];
  }
  ledger_ += {model_->basic().t_row_read(), model_->basic().e_row_access()};
}

void Block::broadcast(std::uint32_t src_row, std::uint32_t col,
                      std::uint32_t word_count, std::uint32_t dst_begin,
                      std::uint32_t dst_count) {
  WAVEPIM_REQUIRE(dst_begin + dst_count <= kRows, "broadcast overflows rows");
  WAVEPIM_REQUIRE(col + word_count <= kWords, "broadcast overflows columns");
  for (std::uint32_t r = 0; r < dst_count; ++r) {
    const std::uint32_t dst = dst_begin + r;
    if (dst == src_row) {
      continue;
    }
    for (std::uint32_t w = 0; w < word_count; ++w) {
      words_[idx(dst, col + w)] = words_[idx(src_row, col + w)];
    }
  }
  // One buffered read then one write per destination row.
  const auto& b = model_->basic();
  ledger_ += {b.t_row_read() + b.t_row_write() * static_cast<double>(dst_count),
              b.e_row_access() * static_cast<double>(1 + dst_count)};
}

void Block::gather_rows(std::span<const std::uint32_t> src_rows,
                        std::uint32_t src_col, std::uint32_t dst_begin,
                        std::uint32_t dst_col) {
  WAVEPIM_REQUIRE(dst_begin + src_rows.size() <= kRows,
                  "gather overflows rows");
  // Copy values out first: the gather must behave like a parallel
  // permutation even when source and destination row ranges overlap.
  std::vector<float> staged(src_rows.size());
  for (std::size_t i = 0; i < src_rows.size(); ++i) {
    staged[i] = words_[idx(src_rows[i], src_col)];
  }
  for (std::size_t i = 0; i < src_rows.size(); ++i) {
    words_[idx(dst_begin + static_cast<std::uint32_t>(i), dst_col)] =
        staged[i];
  }
  // Serial per row: read + write through the single row buffer.
  const auto& b = model_->basic();
  const auto n = static_cast<double>(src_rows.size());
  ledger_ += {(b.t_row_read() + b.t_row_write()) * n,
              b.e_row_access() * (2.0 * n)};
}

void Block::arith(Opcode op, std::uint32_t col_a, std::uint32_t col_b,
                  std::uint32_t col_dst, std::uint32_t row_begin,
                  std::uint32_t count) {
  WAVEPIM_REQUIRE(row_begin + count <= kRows, "arith overflows rows");
  for (std::uint32_t r = row_begin; r < row_begin + count; ++r) {
    const float a = words_[idx(r, col_a)];
    const float b = words_[idx(r, col_b)];
    float v = 0.0f;
    switch (op) {
      case Opcode::Fadd:
        v = a + b;
        break;
      case Opcode::Fsub:
        v = a - b;
        break;
      case Opcode::Fmul:
        v = a * b;
        break;
      default:
        WAVEPIM_REQUIRE(false, "unsupported two-operand arith opcode");
    }
    words_[idx(r, col_dst)] = v;
  }
  ledger_ += model_->op_cost(op, count);
}

void Block::fscale(std::uint32_t col_src, std::uint32_t col_dst, float c,
                   std::uint32_t row_begin, std::uint32_t count) {
  WAVEPIM_REQUIRE(row_begin + count <= kRows, "fscale overflows rows");
  for (std::uint32_t r = row_begin; r < row_begin + count; ++r) {
    words_[idx(r, col_dst)] = c * words_[idx(r, col_src)];
  }
  ledger_ += model_->op_cost(Opcode::Fscale, count);
}

void Block::faxpy(std::uint32_t col_dst, std::uint32_t col_src, float a,
                  float c, std::uint32_t row_begin, std::uint32_t count) {
  WAVEPIM_REQUIRE(row_begin + count <= kRows, "faxpy overflows rows");
  for (std::uint32_t r = row_begin; r < row_begin + count; ++r) {
    words_[idx(r, col_dst)] =
        a * words_[idx(r, col_dst)] + c * words_[idx(r, col_src)];
  }
  ledger_ += model_->op_cost(Opcode::Faxpy, count);
}

void Block::copy_cols(std::uint32_t col_src, std::uint32_t col_dst,
                      std::uint32_t row_begin, std::uint32_t count) {
  WAVEPIM_REQUIRE(row_begin + count <= kRows, "copy overflows rows");
  for (std::uint32_t r = row_begin; r < row_begin + count; ++r) {
    words_[idx(r, col_dst)] = words_[idx(r, col_src)];
  }
  ledger_ += model_->op_cost(Opcode::CopyCols, count);
}

void Block::arith_rows(Opcode op, std::uint32_t col_a, std::uint32_t col_b,
                       std::uint32_t col_dst,
                       std::span<const std::uint32_t> rows) {
  for (std::uint32_t r : rows) {
    const float a = words_[idx(r, col_a)];
    const float b = words_[idx(r, col_b)];
    float v = 0.0f;
    switch (op) {
      case Opcode::Fadd:
        v = a + b;
        break;
      case Opcode::Fsub:
        v = a - b;
        break;
      case Opcode::Fmul:
        v = a * b;
        break;
      default:
        WAVEPIM_REQUIRE(false, "unsupported two-operand arith opcode");
    }
    words_[idx(r, col_dst)] = v;
  }
  ledger_ += model_->op_cost(op, static_cast<std::uint32_t>(rows.size()));
}

void Block::fscale_rows(std::uint32_t col_src, std::uint32_t col_dst, float c,
                        std::span<const std::uint32_t> rows) {
  for (std::uint32_t r : rows) {
    words_[idx(r, col_dst)] = c * words_[idx(r, col_src)];
  }
  ledger_ +=
      model_->op_cost(Opcode::Fscale, static_cast<std::uint32_t>(rows.size()));
}

void Block::scatter_rows(std::span<const std::uint32_t> rows,
                         std::uint32_t col, std::span<const float> values,
                         std::uint32_t distinct_values) {
  WAVEPIM_REQUIRE(rows.size() == values.size(),
                  "scatter needs one value per row");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    words_[idx(rows[i], col)] = values[i];
  }
  const auto& b = model_->basic();
  const auto n = static_cast<double>(rows.size());
  ledger_ += {b.t_row_read() * static_cast<double>(distinct_values) +
                  b.t_row_write() * n,
              b.e_row_access() * (distinct_values + n)};
}

float Block::at(std::uint32_t row, std::uint32_t col) const {
  return words_[idx(row, col)];
}

void Block::set(std::uint32_t row, std::uint32_t col, float v) {
  words_[idx(row, col)] = v;
}

}  // namespace wavepim::pim
