#include "pim/bitserial.h"

#include "common/error.h"

namespace wavepim::pim {

NorMachine::Cell NorMachine::alloc(bool value) {
  cells_.push_back(value);
  return static_cast<Cell>(cells_.size() - 1);
}

bool NorMachine::read(Cell c) const {
  WAVEPIM_REQUIRE(c < cells_.size(), "cell out of range");
  return cells_[c];
}

void NorMachine::write(Cell c, bool value) {
  WAVEPIM_REQUIRE(c < cells_.size(), "cell out of range");
  cells_[c] = value;
}

NorMachine::Cell NorMachine::nor(const std::vector<Cell>& inputs) {
  WAVEPIM_REQUIRE(!inputs.empty(), "NOR needs at least one input");
  bool any = false;
  for (Cell c : inputs) {
    any = any || read(c);
  }
  ++steps_;
  return alloc(!any);
}

NorMachine::Cell NorMachine::not_gate(Cell a) { return nor({a}); }

NorMachine::Cell NorMachine::or_gate(Cell a, Cell b) {
  return not_gate(nor({a, b}));
}

NorMachine::Cell NorMachine::and_gate(Cell a, Cell b) {
  return nor({not_gate(a), not_gate(b)});
}

NorMachine::Cell NorMachine::xor_gate(Cell a, Cell b) {
  // XOR(a,b) = NOR(NOR(a,b), AND(a,b)): 1 + 3 + 1 = 5 steps.
  const Cell nab = nor({a, b});
  const Cell ab = and_gate(a, b);
  return nor({nab, ab});
}

BitVector load_bits(NorMachine& m, std::uint64_t value, int bits) {
  WAVEPIM_REQUIRE(bits >= 1 && bits <= 64, "width out of range");
  BitVector v(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    v[static_cast<std::size_t>(i)] = m.alloc((value >> i) & 1u);
  }
  return v;
}

std::uint64_t read_bits(const NorMachine& m, const BitVector& v) {
  WAVEPIM_REQUIRE(v.size() <= 64, "width out of range");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    value |= static_cast<std::uint64_t>(m.read(v[i])) << i;
  }
  return value;
}

BitVector nor_add(NorMachine& m, const BitVector& a, const BitVector& b) {
  WAVEPIM_REQUIRE(a.size() == b.size() && !a.empty(),
                  "operand widths must match");
  BitVector sum(a.size());
  NorMachine::Cell carry = m.alloc(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Full adder: s = a ^ b ^ c; c' = maj(a, b, c).
    const auto axb = m.xor_gate(a[i], b[i]);
    sum[i] = m.xor_gate(axb, carry);
    const auto ab = m.and_gate(a[i], b[i]);
    const auto axb_c = m.and_gate(axb, carry);
    carry = m.or_gate(ab, axb_c);
  }
  return sum;
}

BitVector nor_mul(NorMachine& m, const BitVector& a, const BitVector& b) {
  WAVEPIM_REQUIRE(a.size() == b.size() && !a.empty(),
                  "operand widths must match");
  const std::size_t n = a.size();
  // Accumulator of 2N bits, initialised to zero.
  BitVector acc(2 * n);
  for (auto& c : acc) {
    c = m.alloc(false);
  }
  for (std::size_t j = 0; j < n; ++j) {
    // Partial product: (a AND b_j) shifted by j, padded to 2N bits.
    BitVector partial(2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i) {
      if (i >= j && i - j < n) {
        partial[i] = m.and_gate(a[i - j], b[j]);
      } else {
        partial[i] = m.alloc(false);
      }
    }
    acc = nor_add(m, acc, partial);
  }
  return acc;
}

}  // namespace wavepim::pim
