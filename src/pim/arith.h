#pragma once

#include "common/units.h"
#include "pim/isa.h"
#include "pim/params.h"

namespace wavepim::pim {

/// Cost of one PIM operation (added into ledgers by blocks/interconnects).
struct OpCost {
  Seconds time;
  Joules energy;

  OpCost& operator+=(const OpCost& o) {
    time += o.time;
    energy += o.energy;
    return *this;
  }
  friend OpCost operator+(OpCost a, const OpCost& b) {
    a += b;
    return a;
  }
};

/// Latency/energy model for bit-serial NOR arithmetic inside one crossbar
/// block. All active rows compute in parallel, so the *time* of an arith
/// op is independent of the row count while the *energy* scales with it.
class ArithModel {
 public:
  explicit ArithModel(ArithLatency latency = {}, BasicOpParams basic = {})
      : latency_(latency), basic_(basic) {}

  [[nodiscard]] const ArithLatency& latency() const { return latency_; }
  [[nodiscard]] const BasicOpParams& basic() const { return basic_; }

  /// NOR cycles of one row-parallel op (Faxpy = scale + multiply-add,
  /// i.e. two fused arith passes).
  [[nodiscard]] std::uint32_t cycles(Opcode op) const;

  /// Time of a row-parallel op (cycles * T_NOR).
  [[nodiscard]] Seconds op_time(Opcode op) const;

  /// Energy of a row-parallel op across `rows` active rows. Each NOR cycle
  /// toggles the output memristor of every active row: one NOR event plus
  /// one RESET per cycle, with SET amortised over the words written.
  [[nodiscard]] Joules op_energy(Opcode op, std::uint32_t rows) const;

  [[nodiscard]] OpCost op_cost(Opcode op, std::uint32_t rows) const {
    return {op_time(op), op_energy(op, rows)};
  }

 private:
  ArithLatency latency_;
  BasicOpParams basic_;
};

}  // namespace wavepim::pim
