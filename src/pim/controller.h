#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "pim/chip.h"
#include "pim/isa.h"

namespace wavepim::pim {

/// A fully lowered PIM program: the instruction stream the host sends,
/// plus the micro-sequence side tables the on-chip decoder expands
/// instructions with (row permutations for gathers/transfers, constant
/// vectors for scatters). Instructions reference tables by index — the
/// same split the paper's decoder/micro-sequence design implies (§4.1).
struct LoweredProgram {
  Program instructions;
  std::vector<std::vector<std::uint32_t>> row_tables;
  std::vector<std::vector<float>> value_tables;

  std::uint32_t add_rows(std::vector<std::uint32_t> rows);
  std::uint32_t add_values(std::vector<float> values);

  [[nodiscard]] std::size_t size() const { return instructions.size(); }
};

/// Instruction-mix statistics of a lowered program.
struct InstructionMix {
  std::array<std::uint64_t, 16> per_opcode{};
  std::uint64_t total = 0;

  [[nodiscard]] std::uint64_t count(Opcode op) const {
    return per_opcode[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::uint64_t arith_count() const;
  [[nodiscard]] std::uint64_t memory_count() const;
};

InstructionMix analyze(const LoweredProgram& program);

/// The central controller: decodes and executes a lowered program on a
/// chip's functional blocks. Inter-block MemCpy instructions are applied
/// through the row buffers and collected for interconnect scheduling, so
/// `execute` returns the same cost structure the mapping layer's sinks
/// produce.
class Controller {
 public:
  explicit Controller(Chip& chip) : chip_(&chip) {}

  struct ExecutionResult {
    OpCost compute;     ///< busiest-block time + total block energy
    OpCost network;     ///< scheduled inter-block transfer cost
    std::uint64_t executed = 0;
  };

  /// Executes every instruction in order. Arithmetic/row ops dispatch to
  /// the target block; MemCpy moves (row_table src, row_table dst) word
  /// lists between blocks.
  ExecutionResult execute(const LoweredProgram& program);

 private:
  Chip* chip_;
};

}  // namespace wavepim::pim
