#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pim/block.h"
#include "pim/interconnect.h"
#include "pim/isa.h"

namespace wavepim::pim {

/// A look-up table resident in an ordinary memory block (§4.3): contents
/// are produced by the host (e.g. sqrt/inverse of material combinations)
/// and loaded before Flux computation begins.
class LookupTable {
 public:
  /// Binds the table to `block_id` and fills rows with `contents`
  /// (one FP32 value per entry, packed 32 per row).
  LookupTable(std::uint32_t block_id, std::span<const float> contents,
              Block& storage);

  [[nodiscard]] std::uint32_t block_id() const { return block_id_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Value at `index` as stored in the backing block.
  [[nodiscard]] float value_at(std::uint32_t index, const Block& storage) const;

  /// Cost of loading the contents from the host into the block (performed
  /// once, before the computation starts).
  [[nodiscard]] const OpCost& load_cost() const { return load_cost_; }

 private:
  std::uint32_t block_id_;
  std::size_t size_;
  OpCost load_cost_;
};

/// Executes one LUT instruction per Algorithm 1:
///   1. R_1: fetch the 32-bit index from (row_id, offset_s) of `compute`.
///   2. R_2: fetch the content word from the LUT block.
///   3. W_1: write the content to (row_id, offset_d) of `compute`.
/// The inter-block leg (LUT block -> compute block) rides the regular
/// interconnect; `interconnect` prices it.
///
/// Returns the content value; accrues costs into the two blocks.
float execute_lut(const LutInstructionFields& fields, Block& compute,
                  std::uint32_t compute_block_id, Block& lut_storage,
                  const LookupTable& table, const Interconnect& interconnect);

}  // namespace wavepim::pim
