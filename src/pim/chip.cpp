#include "pim/chip.h"

#include <algorithm>

#include "common/error.h"

namespace wavepim::pim {

Chip::Chip(ChipConfig config, ArithLatency latency, BasicOpParams basic,
           LinkParams link)
    : config_(std::move(config)),
      arith_(latency, basic),
      network_(config_, link) {}

Block& Chip::block(std::uint32_t id) {
  WAVEPIM_REQUIRE(id < config_.num_blocks(), "block id out of range");
  auto& slot = blocks_[id];
  if (!slot) {
    slot = std::make_unique<Block>(&arith_);
  }
  return *slot;
}

bool Chip::block_allocated(std::uint32_t id) const {
  return blocks_.contains(id);
}

double Chip::static_power_w() const { return chip_static_power_w(config_); }

Chip::PhaseCost Chip::drain_phase() {
  PhaseCost cost{};
  for (auto& [id, block] : blocks_) {
    const OpCost& c = block->consumed();
    cost.busiest_block = std::max(cost.busiest_block, c.time);
    cost.energy += c.energy;
    block->reset_cost();
  }
  cost.critical_path = cost.busiest_block;
  return cost;
}

}  // namespace wavepim::pim
