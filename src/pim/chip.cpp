#include "pim/chip.h"

#include <algorithm>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim::pim {

Chip::Chip(ChipConfig config, ArithLatency latency, BasicOpParams basic,
           LinkParams link)
    : config_(std::move(config)),
      arith_(latency, basic),
      network_(config_, link),
      blocks_(config_.num_blocks()) {}

Block& Chip::block(std::uint32_t id) {
  WAVEPIM_REQUIRE(id < config_.num_blocks(), "block id out of range");
  auto& slot = blocks_[id];
  if (!slot) {
    slot = std::make_unique<Block>(&arith_);
    ++num_allocated_;
  }
  return *slot;
}

void Chip::ensure_blocks(std::uint32_t count) {
  WAVEPIM_REQUIRE(count <= config_.num_blocks(), "block count out of range");
  for (std::uint32_t id = 0; id < count; ++id) {
    (void)block(id);
  }
}

void Chip::reset() {
  for (auto& slot : blocks_) {
    slot.reset();
  }
  num_allocated_ = 0;
}

bool Chip::block_allocated(std::uint32_t id) const {
  return id < blocks_.size() && blocks_[id] != nullptr;
}

double Chip::static_power_w() const { return chip_static_power_w(config_); }

Chip::PhaseCost Chip::drain_phase() {
  trace::Span span("pim.drain_phase");
  PhaseCost cost{};
  // Fixed block-id order keeps the energy sum bit-identical no matter how
  // the phase's work was distributed across threads.
  for (auto& block : blocks_) {
    if (!block) {
      continue;
    }
    const OpCost& c = block->consumed();
    cost.busiest_block = std::max(cost.busiest_block, c.time);
    cost.energy += c.energy;
    block->reset_cost();
  }
  cost.critical_path = cost.busiest_block;
  return cost;
}

}  // namespace wavepim::pim
