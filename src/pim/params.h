#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/units.h"

namespace wavepim::pim {

/// Basic digital-PIM operation energy and time constants (paper Table 4,
/// referenced from FloatPIM).
struct BasicOpParams {
  Joules e_set = femtojoules(23.8);
  Joules e_reset = femtojoules(0.32);
  Joules e_nor = femtojoules(0.29);
  Joules e_search = picojoules(5.34);
  Seconds t_nor = nanoseconds(1.1);
  Seconds t_search = nanoseconds(1.5);

  /// Row-buffer access latencies (read a row into the buffer / write it
  /// back). Modelled at the search latency as in prior digital PIM work.
  [[nodiscard]] Seconds t_row_read() const { return t_search; }
  [[nodiscard]] Seconds t_row_write() const { return t_search; }
  /// Energy of one row-buffer access.
  [[nodiscard]] Joules e_row_access() const { return e_search; }
};

/// Latency of FP32 row-parallel arithmetic in NOR cycles.
///
/// Calibrated so that a 2 GB chip (16.7M parallel row lanes) sustains the
/// paper's Table 2 peak of ~7.25 TFLOP/s on a 50% add / 50% multiply mix:
/// avg = (1200 + 3000)/2 = 2100 cycles -> 2.31 us -> 7.26 TFLOP/s.
struct ArithLatency {
  std::uint32_t fadd_cycles = 1200;
  std::uint32_t fsub_cycles = 1250;
  std::uint32_t fmul_cycles = 3000;
  /// Column-to-column copy: 2 NOR cycles (NOT-NOT) per bit.
  std::uint32_t copy_cycles = 64;
  /// Compare (used by index generation): bit-serial subtract + sign test.
  std::uint32_t fcmp_cycles = 700;
};

/// Per-component power (paper Table 3, Synopsys PrimeTime numbers).
struct ComponentPower {
  double crossbar_w = 6.14e-3;
  double sense_amp_w = 2.38e-3;
  double decoder_w = 0.31e-3;
  double htree_switch_total_w = 107.13e-3;  ///< all 85 switches of a tile
  double bus_switch_w = 17.2e-3;
  double central_controller_w = 6.41;
  double cpu_host_w = 3.06;
  double hbm_w = 36.91;  ///< off-chip HBM2 active power [34]

  /// One memory block: crossbar + sense amps + decoder = 8.83 mW.
  [[nodiscard]] double block_w() const {
    return crossbar_w + sense_amp_w + decoder_w;
  }

  /// Table 3 lists 1.57 W for the 256-block tile memory, i.e. an activity
  /// factor below 256 * 8.83 mW; we keep the paper's number by applying
  /// the implied duty factor.
  [[nodiscard]] double tile_memory_w() const { return 1.57; }

  [[nodiscard]] double tile_w(bool htree) const {
    return tile_memory_w() + (htree ? htree_switch_total_w : bus_switch_w);
  }

  /// Residual chip-level power implied by Table 3's totals (115.02 W
  /// H-tree / 109.25 W Bus for 64 tiles + controller): I/O and clocking
  /// not itemised in the table.
  [[nodiscard]] double chip_overhead_w() const { return 1.09; }
};

/// Interconnect link parameters (per 32-bit word per switch hop).
struct LinkParams {
  Seconds hop_latency_per_word = nanoseconds(1.5);
  Joules hop_energy_per_word = picojoules(1.1);
  /// Crossing between tiles adds a traversal of the chip-level channel.
  Seconds inter_tile_latency_per_word = nanoseconds(6.0);
  Joules inter_tile_energy_per_word = picojoules(4.4);
  /// The bus alternative trades its single data path for a wide shared
  /// medium: words moved per bus cycle (§4.2.2 trade-off).
  std::uint32_t bus_words_per_cycle = 4;
};

/// Interconnect topology choice inside each memory tile (paper §4.2).
enum class Topology { HTree, Bus };

const char* to_string(Topology t);
/// Parses "htree"/"h-tree"/"bus" (case-sensitive). Returns false on
/// anything else, leaving `out` untouched.
bool parse_topology(const char* s, Topology& out);

/// Timing backend used to price a phase's transfer batch
/// (pim/interconnect.h):
///
///  * `Analytic` — the greedy list-scheduler: each transfer starts at the
///    earliest time its whole path has a free channel slot. Contention is
///    modelled, queuing dynamics are not. The default; every committed
///    baseline was produced by it.
///  * `Cycle`    — event-driven simulation with per-link FIFO queues,
///    reporting link utilization, stall time and queue depth alongside
///    the makespan.
///
/// The backend prices only the `network` cost channel: fields, compute
/// and hbm ledgers are bit-identical for either choice (pinned by
/// tests/mapping/net_backend_conformance_test.cpp).
enum class NetBackendKind { Analytic, Cycle };

const char* to_string(NetBackendKind k);
/// Parses "analytic"/"cycle". Returns false on anything else, leaving
/// `out` untouched.
bool parse_net_backend(const char* s, NetBackendKind& out);
/// Process default from `WAVEPIM_NET_BACKEND` (unset -> Analytic).
NetBackendKind default_net_backend();

/// Geometry of one Wave-PIM chip configuration.
///
/// The block is the paper's 1K x 1K crossbar (1 Mb); a tile groups 256
/// blocks (32 MiB); chips differ only in tile count (§7.1).
struct ChipConfig {
  std::string name;
  Bytes capacity = 0;
  Topology topology = Topology::HTree;
  /// Children per H-tree node (§4.2.1: "does not have to be 4; it can be
  /// higher when customizing PIM systems for larger-scale models").
  /// Must divide the 256-block tile into whole levels: 2, 4, or 16.
  std::uint32_t htree_arity = 4;
  /// Optional cap on usable blocks (0 = all of `capacity`). Lets tests
  /// and the CLI under-provision a chip (forcing batched residency)
  /// without changing the tile geometry the interconnect is built from.
  std::uint32_t block_limit = 0;
  /// Timing backend of the chip's interconnect (pricing-only; the env
  /// default keeps every existing call site on the analytic scheduler
  /// unless `WAVEPIM_NET_BACKEND` overrides it).
  NetBackendKind net_backend = default_net_backend();

  static constexpr std::uint32_t kBlockRows = 1024;
  static constexpr std::uint32_t kBlockCols = 1024;
  static constexpr std::uint32_t kWordBits = 32;
  static constexpr std::uint32_t kBlocksPerTile = 256;

  [[nodiscard]] static constexpr Bytes block_bytes() {
    return static_cast<Bytes>(kBlockRows) * kBlockCols / 8;
  }
  [[nodiscard]] static constexpr Bytes tile_bytes() {
    return block_bytes() * kBlocksPerTile;
  }
  [[nodiscard]] static constexpr std::uint32_t words_per_row() {
    return kBlockCols / kWordBits;
  }

  [[nodiscard]] std::uint32_t num_tiles() const {
    return static_cast<std::uint32_t>(capacity / tile_bytes());
  }
  [[nodiscard]] std::uint32_t num_blocks() const {
    const std::uint32_t physical = num_tiles() * kBlocksPerTile;
    return block_limit != 0 && block_limit < physical ? block_limit
                                                      : physical;
  }
  /// Maximum row-parallel FP lanes (paper: "2GB/1,024b = 16M").
  [[nodiscard]] std::uint64_t parallel_lanes() const {
    return static_cast<std::uint64_t>(num_blocks()) * kBlockRows;
  }

  /// H-tree switches per 256-block tile: (256-1)/(arity-1), i.e.
  /// 64 + 16 + 4 + 1 = 85 for the paper's 4-ary tree (Table 3),
  /// 255 for a binary tree, 17 for a 16-ary one.
  [[nodiscard]] std::uint32_t htree_switches_per_tile() const {
    return (kBlocksPerTile - 1) / (htree_arity - 1);
  }

  /// Tree levels above the blocks (4-ary: 4; 16-ary: 2; binary: 8).
  [[nodiscard]] std::uint32_t htree_levels() const {
    std::uint32_t levels = 0;
    for (std::uint32_t span = htree_arity; span <= kBlocksPerTile;
         span *= htree_arity) {
      ++levels;
    }
    return levels;
  }
};

/// The four evaluated capacities (Table 2 / §7.1).
ChipConfig chip_512mb(Topology t = Topology::HTree);
ChipConfig chip_2gb(Topology t = Topology::HTree);
ChipConfig chip_8gb(Topology t = Topology::HTree);
ChipConfig chip_16gb(Topology t = Topology::HTree);

/// All four standard configs in capacity order.
std::array<ChipConfig, 4> standard_chips(Topology t = Topology::HTree);

/// Static power of a whole chip configuration, composed per Table 3
/// (tiles + central controller + residual overhead; host and HBM are
/// accounted separately by the system model).
double chip_static_power_w(const ChipConfig& config,
                           const ComponentPower& power = {});

/// Peak FP32 throughput (ops/s) at a 50/50 add/mul mix — the paper's
/// Table 2 "maximum throughput" methodology.
double peak_throughput_flops(const ChipConfig& config,
                             const ArithLatency& lat = {},
                             const BasicOpParams& ops = {});

/// Process-node scaling suggested by [2, 50] (§7.3): 28 nm -> 12 nm gives
/// 3.81x performance and 2.0x energy improvement.
struct ProcessScaling {
  double speedup = 1.0;
  double energy_saving = 1.0;

  static ProcessScaling node_28nm() { return {1.0, 1.0}; }
  static ProcessScaling node_12nm() { return {3.81, 2.0}; }
};

}  // namespace wavepim::pim
