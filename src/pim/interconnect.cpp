#include "pim/interconnect.h"

#include <algorithm>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim::pim {

namespace {

constexpr std::uint32_t kBlocksPerTile = ChipConfig::kBlocksPerTile;

}  // namespace

Interconnect::Interconnect(const ChipConfig& config, LinkParams link)
    : config_(config), link_(link) {
  WAVEPIM_REQUIRE(config.num_tiles() > 0, "chip must have at least one tile");
  // Derive the tree geometry from the (configurable, §4.2.1) arity.
  const std::uint32_t arity = config.htree_arity;
  WAVEPIM_REQUIRE(arity == 2 || arity == 4 || arity == 16,
                  "H-tree arity must divide the tile into whole levels");
  shift_ = 0;
  for (std::uint32_t a = arity; a > 1; a >>= 1) {
    ++shift_;
  }
  levels_ = config.htree_levels();
  switches_per_tile_ = config.htree_switches_per_tile();
  level_offset_.assign(levels_, 0);
  std::uint32_t offset = 0;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    level_offset_[level] = offset;
    offset += kBlocksPerTile >> (shift_ * (level + 1));
  }
  WAVEPIM_ASSERT(offset == switches_per_tile_, "switch count mismatch");
}

std::uint32_t Interconnect::num_resources() const {
  // The chip-level network between tiles is a crossbar through the
  // central controller: each tile's root port serialises its own traffic
  // but distinct tile pairs proceed concurrently, so the tile switches
  // are the only contended resources.
  const std::uint32_t per_tile =
      config_.topology == Topology::HTree ? switches_per_tile_ : 1;
  return config_.num_tiles() * per_tile;
}

std::uint32_t Interconnect::hop_count(std::uint32_t src,
                                      std::uint32_t dst) const {
  WAVEPIM_REQUIRE(src < config_.num_blocks() && dst < config_.num_blocks(),
                  "block id out of range");
  if (src == dst) {
    return 0;
  }
  const std::uint32_t src_tile = src / kBlocksPerTile;
  const std::uint32_t dst_tile = dst / kBlocksPerTile;

  if (config_.topology == Topology::Bus) {
    // Through the tile's central switch; cross-tile passes both tiles'
    // switches.
    return src_tile == dst_tile ? 2 : 4;
  }

  if (src_tile != dst_tile) {
    // Full ascent of the source tree and full descent of the destination.
    return 2 * levels_;
  }
  const std::uint32_t a = src % kBlocksPerTile;
  const std::uint32_t b = dst % kBlocksPerTile;
  // LCA level: level L switches group arity^(L+1) blocks.
  for (std::uint32_t level = 0; level < levels_; ++level) {
    if ((a >> (shift_ * (level + 1))) == (b >> (shift_ * (level + 1)))) {
      return 2 * level + 1;
    }
  }
  WAVEPIM_ASSERT(false, "same-tile blocks must share the tile root");
}

Seconds Interconnect::isolated_latency(const Transfer& t) const {
  WAVEPIM_REQUIRE(t.words > 0, "transfer must move at least one word");
  const std::uint32_t hops = hop_count(t.src_block, t.dst_block);
  // Wormhole pipelining: words stream through the path, so latency is
  // (words + hops) cycles of the per-word hop time. The bus moves
  // several words per cycle over its wide shared medium.
  std::uint32_t cycles = t.words;
  if (config_.topology == Topology::Bus) {
    cycles = (t.words + link_.bus_words_per_cycle - 1) /
             link_.bus_words_per_cycle;
  }
  Seconds latency =
      link_.hop_latency_per_word * static_cast<double>(cycles + hops);
  if (t.src_block / kBlocksPerTile != t.dst_block / kBlocksPerTile) {
    // The wide bus datapath extends through the chip-level channel.
    const std::uint32_t inter_words =
        config_.topology == Topology::Bus
            ? (t.words + link_.bus_words_per_cycle - 1) /
                  link_.bus_words_per_cycle
            : t.words;
    latency += link_.inter_tile_latency_per_word *
               static_cast<double>(inter_words);
  }
  return latency;
}

Joules Interconnect::transfer_energy(const Transfer& t) const {
  const std::uint32_t hops = hop_count(t.src_block, t.dst_block);
  Joules e = link_.hop_energy_per_word *
             static_cast<double>(static_cast<std::uint64_t>(t.words) * hops);
  if (t.src_block / kBlocksPerTile != t.dst_block / kBlocksPerTile) {
    e += link_.inter_tile_energy_per_word * static_cast<double>(t.words);
  }
  return e;
}

void Interconnect::path_resources(const Transfer& t,
                                  std::vector<std::uint32_t>& out) const {
  out.clear();
  const std::uint32_t src_tile = t.src_block / kBlocksPerTile;
  const std::uint32_t dst_tile = t.dst_block / kBlocksPerTile;

  if (config_.topology == Topology::Bus) {
    out.push_back(src_tile);
    if (dst_tile != src_tile) {
      out.push_back(dst_tile);
    }
    return;
  }

  auto tile_base = [&](std::uint32_t tile) {
    return tile * switches_per_tile_;
  };
  auto push_switch = [&](std::uint32_t tile, std::uint32_t level,
                         std::uint32_t local) {
    out.push_back(tile_base(tile) + level_offset_[level] +
                  (local >> (shift_ * (level + 1))));
  };

  const std::uint32_t a = t.src_block % kBlocksPerTile;
  const std::uint32_t b = t.dst_block % kBlocksPerTile;

  if (src_tile == dst_tile) {
    if (t.src_block == t.dst_block) {
      return;
    }
    // Ascend from src to the LCA switch, descend to dst: the union of the
    // two ancestor chains up to and including the LCA level.
    std::uint32_t lca = 0;
    while ((a >> (shift_ * (lca + 1))) != (b >> (shift_ * (lca + 1)))) {
      ++lca;
    }
    for (std::uint32_t level = 0; level < lca; ++level) {
      push_switch(src_tile, level, a);
      push_switch(dst_tile, level, b);
    }
    push_switch(src_tile, lca, a);
    return;
  }

  // Cross-tile: both full ancestor chains; the inter-tile crossbar leg is
  // latency/energy-priced but not a shared resource.
  for (std::uint32_t level = 0; level < levels_; ++level) {
    push_switch(src_tile, level, a);
    push_switch(dst_tile, level, b);
  }
}

std::uint32_t Interconnect::resource_capacity(std::uint32_t resource) const {
  if (config_.topology == Topology::Bus) {
    // "only one data path can be enabled when using the bus" (§4.2.2).
    return 1;
  }
  // H-tree switches aggregate arity-fold more subtree bandwidth per level
  // (fat-tree-style link widening, the usual VLSI H-tree sizing that the
  // per-tile switch power budget of Table 3 reflects): for the 4-ary
  // tree S0 carries one channel, S1 four, S2 sixteen, S3 sixty-four.
  const std::uint32_t local = resource % switches_per_tile_;
  std::uint32_t level = levels_ - 1;
  for (std::uint32_t l = 0; l + 1 < levels_; ++l) {
    if (local < level_offset_[l + 1]) {
      level = l;
      break;
    }
  }
  return 1u << (shift_ * level);
}

ScheduleResult Interconnect::schedule(
    std::span<const Transfer> transfers) const {
  trace::Span span("net.schedule", static_cast<double>(transfers.size()));
  if (trace::enabled()) {
    std::uint64_t words = 0;
    for (const Transfer& t : transfers) {
      words += t.words;
    }
    trace::counter("net.transfers", static_cast<double>(transfers.size()));
    trace::counter("net.words", static_cast<double>(words));
  }
  ScheduleResult result{};
  // Per-resource channel slots: a transfer claims the earliest-free slot
  // of every switch on its path.
  std::vector<std::vector<Seconds>> slots(num_resources());
  for (std::uint32_t r = 0; r < slots.size(); ++r) {
    slots[r].assign(resource_capacity(r), Seconds(0.0));
  }
  std::vector<std::uint32_t> path;

  // Issue order: short (leaf-local) paths first, then progressively wider
  // ones, with a deterministic pseudo-random shuffle inside each class.
  // Naive mesh-order issue chains every transfer through the switch it
  // shares with its predecessor, collapsing the network's parallelism to
  // near-serial; level-ordered, de-correlated issue — which is what the
  // central controller's micro-sequencer would arrange — approaches the
  // per-switch load bound instead.
  std::vector<std::uint32_t> order(transfers.size());
  std::vector<std::uint64_t> key(transfers.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
    const Transfer& t = transfers[i];
    const std::uint64_t hops = hop_count(t.src_block, t.dst_block);
    // SplitMix64 tie-break: deterministic, order-independent.
    std::uint64_t h = i + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    key[i] = (hops << 56) | (h & 0x00FFFFFFFFFFFFFFull);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return key[a] < key[b];
                   });

  std::vector<std::size_t> chosen_slot;
  for (std::uint32_t i : order) {
    const Transfer& t = transfers[i];
    const Seconds duration = isolated_latency(t);
    result.serial_sum += duration;
    result.energy += transfer_energy(t);

    path_resources(t, path);
    chosen_slot.assign(path.size(), 0);
    Seconds start(0.0);
    for (std::size_t p = 0; p < path.size(); ++p) {
      auto& res = slots[path[p]];
      std::size_t best = 0;
      for (std::size_t s = 1; s < res.size(); ++s) {
        if (res[s] < res[best]) {
          best = s;
        }
      }
      chosen_slot[p] = best;
      start = std::max(start, res[best]);
    }
    const Seconds end = start + duration;
    for (std::size_t p = 0; p < path.size(); ++p) {
      slots[path[p]][chosen_slot[p]] = end;
    }
    result.makespan = std::max(result.makespan, end);
  }
  return result;
}

}  // namespace wavepim::pim
