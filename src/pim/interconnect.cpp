#include "pim/interconnect.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim::pim {

namespace {

constexpr std::uint32_t kBlocksPerTile = ChipConfig::kBlocksPerTile;

}  // namespace

Interconnect::Interconnect(const ChipConfig& config, LinkParams link)
    : config_(config),
      link_(link),
      backend_(&net_backend_for(config.net_backend)) {
  WAVEPIM_REQUIRE(config.num_tiles() > 0, "chip must have at least one tile");
  // Derive the tree geometry from the (configurable, §4.2.1) arity.
  const std::uint32_t arity = config.htree_arity;
  WAVEPIM_REQUIRE(arity == 2 || arity == 4 || arity == 16,
                  "H-tree arity must divide the tile into whole levels");
  shift_ = 0;
  for (std::uint32_t a = arity; a > 1; a >>= 1) {
    ++shift_;
  }
  levels_ = config.htree_levels();
  switches_per_tile_ = config.htree_switches_per_tile();
  level_offset_.assign(levels_, 0);
  std::uint32_t offset = 0;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    level_offset_[level] = offset;
    offset += kBlocksPerTile >> (shift_ * (level + 1));
  }
  WAVEPIM_ASSERT(offset == switches_per_tile_, "switch count mismatch");
}

std::uint32_t Interconnect::num_resources() const {
  // The chip-level network between tiles is a crossbar through the
  // central controller: each tile's root port serialises its own traffic
  // but distinct tile pairs proceed concurrently, so the tile switches
  // are the only contended resources.
  const std::uint32_t per_tile =
      config_.topology == Topology::HTree ? switches_per_tile_ : 1;
  return config_.num_tiles() * per_tile;
}

std::uint32_t Interconnect::hop_count(std::uint32_t src,
                                      std::uint32_t dst) const {
  WAVEPIM_REQUIRE(src < config_.num_blocks() && dst < config_.num_blocks(),
                  "block id out of range");
  if (src == dst) {
    return 0;
  }
  const std::uint32_t src_tile = src / kBlocksPerTile;
  const std::uint32_t dst_tile = dst / kBlocksPerTile;

  if (config_.topology == Topology::Bus) {
    // Through the tile's central switch; cross-tile passes both tiles'
    // switches.
    return src_tile == dst_tile ? 2 : 4;
  }

  if (src_tile != dst_tile) {
    // Full ascent of the source tree and full descent of the destination.
    return 2 * levels_;
  }
  const std::uint32_t a = src % kBlocksPerTile;
  const std::uint32_t b = dst % kBlocksPerTile;
  // LCA level: level L switches group arity^(L+1) blocks.
  for (std::uint32_t level = 0; level < levels_; ++level) {
    if ((a >> (shift_ * (level + 1))) == (b >> (shift_ * (level + 1)))) {
      return 2 * level + 1;
    }
  }
  WAVEPIM_ASSERT(false, "same-tile blocks must share the tile root");
}

Seconds Interconnect::isolated_latency(const Transfer& t) const {
  WAVEPIM_REQUIRE(t.words > 0, "transfer must move at least one word");
  const std::uint32_t hops = hop_count(t.src_block, t.dst_block);
  // Wormhole pipelining: words stream through the path, so latency is
  // (words + hops) cycles of the per-word hop time. The bus moves
  // several words per cycle over its wide shared medium.
  std::uint32_t cycles = t.words;
  if (config_.topology == Topology::Bus) {
    cycles = (t.words + link_.bus_words_per_cycle - 1) /
             link_.bus_words_per_cycle;
  }
  Seconds latency =
      link_.hop_latency_per_word * static_cast<double>(cycles + hops);
  if (t.src_block / kBlocksPerTile != t.dst_block / kBlocksPerTile) {
    // The wide bus datapath extends through the chip-level channel.
    const std::uint32_t inter_words =
        config_.topology == Topology::Bus
            ? (t.words + link_.bus_words_per_cycle - 1) /
                  link_.bus_words_per_cycle
            : t.words;
    latency += link_.inter_tile_latency_per_word *
               static_cast<double>(inter_words);
  }
  return latency;
}

Joules Interconnect::transfer_energy(const Transfer& t) const {
  const std::uint32_t hops = hop_count(t.src_block, t.dst_block);
  Joules e = link_.hop_energy_per_word *
             static_cast<double>(static_cast<std::uint64_t>(t.words) * hops);
  if (t.src_block / kBlocksPerTile != t.dst_block / kBlocksPerTile) {
    e += link_.inter_tile_energy_per_word * static_cast<double>(t.words);
  }
  return e;
}

void Interconnect::path_resources(const Transfer& t,
                                  std::vector<std::uint32_t>& out) const {
  out.clear();
  const std::uint32_t src_tile = t.src_block / kBlocksPerTile;
  const std::uint32_t dst_tile = t.dst_block / kBlocksPerTile;

  if (config_.topology == Topology::Bus) {
    // A bus self-transfer still claims the tile switch: the row buffer
    // drives the shared medium even when the words return to the same
    // block (and the pre-seam scheduler priced it that way).
    out.push_back(src_tile);
    if (dst_tile != src_tile) {
      out.push_back(dst_tile);
    }
    return;
  }

  auto tile_base = [&](std::uint32_t tile) {
    return tile * switches_per_tile_;
  };
  auto push_switch = [&](std::uint32_t tile, std::uint32_t level,
                         std::uint32_t local) {
    out.push_back(tile_base(tile) + level_offset_[level] +
                  (local >> (shift_ * (level + 1))));
  };

  const std::uint32_t a = t.src_block % kBlocksPerTile;
  const std::uint32_t b = t.dst_block % kBlocksPerTile;

  if (src_tile == dst_tile) {
    if (t.src_block == t.dst_block) {
      return;
    }
    // Ascend from src to the LCA switch, descend to dst: the union of the
    // two ancestor chains up to and including the LCA level.
    std::uint32_t lca = 0;
    while ((a >> (shift_ * (lca + 1))) != (b >> (shift_ * (lca + 1)))) {
      ++lca;
    }
    for (std::uint32_t level = 0; level < lca; ++level) {
      push_switch(src_tile, level, a);
      push_switch(dst_tile, level, b);
    }
    push_switch(src_tile, lca, a);
    return;
  }

  // Cross-tile: both full ancestor chains; the inter-tile crossbar leg is
  // latency/energy-priced but not a shared resource.
  for (std::uint32_t level = 0; level < levels_; ++level) {
    push_switch(src_tile, level, a);
    push_switch(dst_tile, level, b);
  }
}

std::uint32_t Interconnect::resource_capacity(std::uint32_t resource) const {
  if (config_.topology == Topology::Bus) {
    // "only one data path can be enabled when using the bus" (§4.2.2).
    return 1;
  }
  // H-tree switches aggregate arity-fold more subtree bandwidth per level
  // (fat-tree-style link widening, the usual VLSI H-tree sizing that the
  // per-tile switch power budget of Table 3 reflects): for the 4-ary
  // tree S0 carries one channel, S1 four, S2 sixteen, S3 sixty-four.
  const std::uint32_t local = resource % switches_per_tile_;
  std::uint32_t level = levels_ - 1;
  for (std::uint32_t l = 0; l + 1 < levels_; ++l) {
    if (local < level_offset_[l + 1]) {
      level = l;
      break;
    }
  }
  return 1u << (shift_ * level);
}

ScheduleResult AnalyticBackend::schedule(
    const Interconnect& net, std::span<const Transfer> transfers) const {
  ScheduleResult result{};
  // Per-resource channel slots: a transfer claims the earliest-free slot
  // of every switch on its path.
  std::vector<std::vector<Seconds>> slots(net.num_resources());
  for (std::uint32_t r = 0; r < slots.size(); ++r) {
    slots[r].assign(net.resource_capacity(r), Seconds(0.0));
  }
  std::vector<std::uint32_t> path;

  // Issue order: short (leaf-local) paths first, then progressively wider
  // ones, with a deterministic pseudo-random shuffle inside each class.
  // Naive mesh-order issue chains every transfer through the switch it
  // shares with its predecessor, collapsing the network's parallelism to
  // near-serial; level-ordered, de-correlated issue — which is what the
  // central controller's micro-sequencer would arrange — approaches the
  // per-switch load bound instead.
  std::vector<std::uint32_t> order(transfers.size());
  std::vector<std::uint64_t> key(transfers.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
    const Transfer& t = transfers[i];
    const std::uint64_t hops = net.hop_count(t.src_block, t.dst_block);
    // SplitMix64 tie-break: deterministic, order-independent.
    std::uint64_t h = i + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    key[i] = (hops << 56) | (h & 0x00FFFFFFFFFFFFFFull);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return key[a] < key[b];
                   });

  std::vector<std::size_t> chosen_slot;
  for (std::uint32_t i : order) {
    const Transfer& t = transfers[i];
    const Seconds duration = net.isolated_latency(t);
    result.serial_sum += duration;
    result.energy += net.transfer_energy(t);

    net.path_resources(t, path);
    chosen_slot.assign(path.size(), 0);
    Seconds start(0.0);
    for (std::size_t p = 0; p < path.size(); ++p) {
      auto& res = slots[path[p]];
      std::size_t best = 0;
      for (std::size_t s = 1; s < res.size(); ++s) {
        if (res[s] < res[best]) {
          best = s;
        }
      }
      chosen_slot[p] = best;
      start = std::max(start, res[best]);
    }
    const Seconds end = start + duration;
    for (std::size_t p = 0; p < path.size(); ++p) {
      slots[path[p]][chosen_slot[p]] = end;
    }
    result.makespan = std::max(result.makespan, end);
  }
  return result;
}

ScheduleResult CycleBackend::schedule(
    const Interconnect& net, std::span<const Transfer> transfers) const {
  ScheduleResult result{};
  result.has_link_stats = true;
  if (transfers.empty()) {
    return result;
  }
  const std::uint32_t num_res = net.num_resources();
  const std::uint32_t n = static_cast<std::uint32_t>(transfers.size());

  // Flattened per-transfer paths and durations; serial_sum/energy fold in
  // arrival (input) order — order-independent values, same as analytic.
  std::vector<std::uint32_t> path_begin(n + 1, 0);
  std::vector<std::uint32_t> paths;
  std::vector<Seconds> duration(n);
  {
    std::vector<std::uint32_t> scratch;
    for (std::uint32_t i = 0; i < n; ++i) {
      duration[i] = net.isolated_latency(transfers[i]);
      result.serial_sum += duration[i];
      result.energy += net.transfer_energy(transfers[i]);
      net.path_resources(transfers[i], scratch);
      paths.insert(paths.end(), scratch.begin(), scratch.end());
      path_begin[i + 1] = static_cast<std::uint32_t>(paths.size());
    }
  }
  auto path_of = [&](std::uint32_t i) {
    return std::span<const std::uint32_t>(paths.data() + path_begin[i],
                                          path_begin[i + 1] - path_begin[i]);
  };

  // Release order: the controller's micro-sequencer releases the batch
  // level-ordered with the same deterministic de-correlating shuffle the
  // analytic scheduler issues in (see AnalyticBackend::schedule — naive
  // mesh order chains every transfer through the switch it shares with
  // its predecessor, and FIFO queues turn that correlation into
  // head-of-line serialisation). Queues service strictly FIFO in release
  // order; `rank` is a transfer's position in it.
  std::vector<std::uint32_t> order(n);
  std::vector<std::uint32_t> rank(n);
  {
    std::vector<std::uint64_t> key(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      order[i] = i;
      const Transfer& t = transfers[i];
      const std::uint64_t hops = net.hop_count(t.src_block, t.dst_block);
      std::uint64_t h = i + 0x9E3779B97F4A7C15ull;
      h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
      h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
      key[i] = (hops << 56) | (h & 0x00FFFFFFFFFFFFFFull);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return key[a] < key[b];
                     });
    for (std::uint32_t pos = 0; pos < n; ++pos) {
      rank[order[pos]] = pos;
    }
  }

  // Release-ordered FIFO queue per resource (the whole batch arrives at
  // t = 0: the controller releases a phase's transfer list at once). The
  // head cursor advances lazily past entries that already started.
  std::vector<std::vector<std::uint32_t>> queue(num_res);
  std::vector<std::uint32_t> cap(num_res);
  for (std::uint32_t r = 0; r < num_res; ++r) {
    cap[r] = net.resource_capacity(r);
  }
  for (const std::uint32_t i : order) {
    for (const std::uint32_t r : path_of(i)) {
      queue[r].push_back(i);
    }
  }
  std::vector<std::uint32_t> head(num_res, 0);
  std::vector<std::uint32_t> busy(num_res, 0);
  std::vector<Seconds> busy_time(num_res, Seconds(0.0));
  for (std::uint32_t r = 0; r < num_res; ++r) {
    result.links.peak_queue = std::max(
        result.links.peak_queue, static_cast<std::uint32_t>(queue[r].size()));
  }

  enum State : std::uint8_t { kWaiting, kRunning, kDone };
  std::vector<std::uint8_t> state(n, kWaiting);

  // Completion events, earliest first; the transfer index breaks time
  // ties so event processing is fully deterministic.
  using Event = std::pair<double, std::uint32_t>;  ///< (end time, transfer)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  Seconds now(0.0);

  // Start rule: a switch with k channels serves its queue FIFO per
  // channel grant — a transfer may overtake a *blocked* head, but only
  // onto a free channel, so it must sit within the first
  // (capacity - busy) waiting entries of every queue on its path
  // (cut-through within the free-channel window). The single-channel bus
  // degenerates to strict head-of-line FIFO.
  auto in_window = [&](std::uint32_t r, std::uint32_t i) {
    const std::uint32_t free = cap[r] - busy[r];
    const auto& q = queue[r];
    std::uint32_t& h = head[r];
    while (h < q.size() && state[q[h]] != kWaiting) {
      ++h;
    }
    std::uint32_t seen = 0;
    for (std::uint32_t p = h; p < q.size() && seen < free; ++p) {
      if (state[q[p]] != kWaiting) {
        continue;
      }
      if (q[p] == i) {
        return true;
      }
      ++seen;
    }
    return false;
  };
  auto eligible = [&](std::uint32_t i) {
    for (const std::uint32_t r : path_of(i)) {
      if (busy[r] >= cap[r] || !in_window(r, i)) {
        return false;
      }
    }
    return true;
  };

  // Candidate pool, drained in release-rank order: the total order makes
  // every start decision deterministic no matter which event exposed the
  // candidate. Entries are ranks (stale ones are discarded at pop).
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>>
      candidates;
  auto push_window = [&](std::uint32_t r) {
    if (busy[r] >= cap[r]) {
      return;
    }
    const std::uint32_t free = cap[r] - busy[r];
    const auto& q = queue[r];
    std::uint32_t& h = head[r];
    while (h < q.size() && state[q[h]] != kWaiting) {
      ++h;
    }
    std::uint32_t seen = 0;
    for (std::uint32_t p = h; p < q.size() && seen < free; ++p) {
      if (state[q[p]] != kWaiting) {
        continue;
      }
      candidates.push(rank[q[p]]);
      ++seen;
    }
  };
  auto start = [&](std::uint32_t i) {
    state[i] = kRunning;
    result.links.stall_time += now;  // arrival was t = 0
    for (const std::uint32_t r : path_of(i)) {
      ++busy[r];
      busy_time[r] += duration[i];
    }
    events.emplace((now + duration[i]).value(), i);
  };
  auto drain = [&]() {
    while (!candidates.empty()) {
      const std::uint32_t i = order[candidates.top()];
      candidates.pop();
      if (state[i] != kWaiting || !eligible(i)) {
        continue;  // stale, or still blocked — re-exposed by later events
      }
      start(i);
      // Starting shrinks the path windows and shifts entries behind i
      // into them; re-expose both effects.
      for (const std::uint32_t r : path_of(i)) {
        push_window(r);
      }
    }
  };

  // t = 0: self-transfers bypass the fabric entirely; everything else
  // negotiates the queues.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (path_begin[i] == path_begin[i + 1]) {
      start(i);
    }
  }
  for (std::uint32_t r = 0; r < num_res; ++r) {
    push_window(r);
  }
  drain();

  while (!events.empty()) {
    const auto [end_time, i] = events.top();
    events.pop();
    now = Seconds(end_time);
    state[i] = kDone;
    result.makespan = std::max(result.makespan, now);
    for (const std::uint32_t r : path_of(i)) {
      --busy[r];
      push_window(r);
    }
    drain();
  }

  // Per-link aggregates: utilization normalises each link's busy time by
  // its channel count over the batch makespan.
  if (result.makespan > Seconds(0.0)) {
    double util_sum = 0.0;
    for (std::uint32_t r = 0; r < num_res; ++r) {
      if (busy_time[r] <= Seconds(0.0)) {
        continue;
      }
      ++result.links.links_used;
      const double util =
          busy_time[r].value() /
          (static_cast<double>(cap[r]) * result.makespan.value());
      util_sum += util;
      result.links.max_utilization =
          std::max(result.links.max_utilization, util);
    }
    if (result.links.links_used > 0) {
      result.links.mean_utilization =
          util_sum / static_cast<double>(result.links.links_used);
    }
  }
  return result;
}

const NetBackend& net_backend_for(NetBackendKind kind) {
  static const AnalyticBackend analytic;
  static const CycleBackend cycle;
  if (kind == NetBackendKind::Cycle) {
    return cycle;
  }
  return analytic;
}

ScheduleResult Interconnect::schedule(
    std::span<const Transfer> transfers) const {
  trace::Span span("net.schedule", static_cast<double>(transfers.size()));
  if (trace::enabled()) {
    std::uint64_t words = 0;
    for (const Transfer& t : transfers) {
      words += t.words;
    }
    trace::counter("net.transfers", static_cast<double>(transfers.size()));
    trace::counter("net.words", static_cast<double>(words));
  }
  ScheduleResult result = backend_->schedule(*this, transfers);
  if (trace::enabled() && result.has_link_stats) {
    trace::counter("net.link.utilization", result.links.max_utilization);
    trace::counter("net.link.stall_cycles",
                   result.links.stall_time.value() /
                       link_.hop_latency_per_word.value());
    trace::counter("net.link.queue_depth",
                   static_cast<double>(result.links.peak_queue));
  }
  return result;
}

}  // namespace wavepim::pim
