#pragma once

#include <array>
#include <string>

#include "common/units.h"

namespace wavepim::gpumodel {

/// Hardware description of one GPU platform (paper Table 2).
struct GpuSpec {
  std::string name;
  double peak_fp32_flops = 0.0;     ///< FP32 maximum throughput
  double mem_bandwidth_bps = 0.0;   ///< off-chip memory bandwidth
  double board_power_w = 0.0;       ///< TDP
  double host_power_w = 0.0;        ///< host CPU package power under load
  std::uint32_t cuda_cores = 0;
  double clock_mhz = 0.0;
};

GpuSpec gtx_1080ti();
GpuSpec tesla_p100();
GpuSpec tesla_v100();

/// The three baselines in the paper's order.
std::array<GpuSpec, 3> paper_gpus();

/// The CPU baseline: dual Intel Xeon Platinum 8160 (48 cores) running the
/// p4est-based reference implementation (§3.1).
struct CpuSpec {
  std::string name = "2x Xeon Platinum 8160";
  double peak_fp32_flops = 6.45e12;   ///< 48c x 2.1 GHz x 2 AVX-512 FMA x 16
  double mem_bandwidth_bps = 256.0e9; ///< 12 DDR4-2666 channels
  double package_power_w = 300.0;     ///< 2 x 150 W TDP
};

CpuSpec dual_xeon_8160();

}  // namespace wavepim::gpumodel
