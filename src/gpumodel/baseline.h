#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "dg/op_counter.h"
#include "gpumodel/gpu_specs.h"
#include "mapping/config.h"

namespace wavepim::gpumodel {

/// GPU software variant (§7.2): the unfused implementation launches
/// Volume, Flux and Integration as separate kernels; the fused one merges
/// Volume and Flux, cutting intermediate traffic and divergence.
enum class GpuImplementation { Unfused, Fused };

const char* to_string(GpuImplementation impl);

/// Roofline efficiency knobs, calibrated once against the paper's §3.1
/// speedups and kernel observations (see gpumodel/calibration.cpp for the
/// rationale of each value).
struct GpuEfficiency {
  double bandwidth = 0.78;       ///< achieved/peak DRAM bandwidth
  double compute_volume = 0.50;  ///< dense dot-product kernels
  double compute_integration = 0.90;  ///< pure streaming
  /// "the compute Flux kernel is the most inefficient kernel, since it
  /// has a large divergence" (§3.1). Divergent warps also de-coalesce the
  /// memory accesses, so the flux kernel's achieved bandwidth drops too.
  double compute_flux_central = 0.35;
  double compute_flux_riemann = 0.20;
  double flux_bandwidth_central = 0.85;
  double flux_bandwidth_riemann = 0.55;
  /// Fused implementation: traffic kept in registers between Volume and
  /// Flux, better neighbour indexing (§7.2).
  double fused_traffic_factor = 0.62;
  double fused_divergence_recovery = 1.5;
  Seconds kernel_launch_overhead = microseconds(5.0);
};

/// Per-platform projection of a whole run.
struct PlatformEstimate {
  std::string platform;
  Seconds step_time;
  Seconds total_time;
  Joules total_energy;
  double achieved_flops = 0.0;  ///< useful FLOP/s over the run
};

/// Per-kernel stage times of the unfused implementation (the §3.1 kernel
/// analysis: Volume scales with SMs, Integration is bandwidth-bound,
/// Flux suffers divergence).
struct GpuKernelTimes {
  Seconds volume;
  Seconds flux;
  Seconds integration;
  bool volume_compute_bound = false;
  bool flux_compute_bound = false;
  bool integration_compute_bound = false;
};

GpuKernelTimes gpu_kernel_times(const mapping::Problem& problem,
                                const GpuSpec& gpu,
                                const GpuEfficiency& eff = {});

/// Roofline projection of one GPU implementation of a benchmark.
PlatformEstimate estimate_gpu(const mapping::Problem& problem,
                              const GpuSpec& gpu, GpuImplementation impl,
                              std::uint64_t steps,
                              const GpuEfficiency& eff = {});

/// Projection of the p4est-based CPU reference (§3.1). The effective
/// efficiency decays with working-set size (cache effects), which is what
/// makes the paper's level-5 GPU speedups larger than the level-4 ones.
struct CpuEfficiency {
  double compute = 0.040;
  double bandwidth_base = 0.027;
  /// Working-set knee of the bandwidth-efficiency decay.
  Bytes cache_knee = mebibytes(384);
};

PlatformEstimate estimate_cpu(const mapping::Problem& problem,
                              const CpuSpec& cpu, std::uint64_t steps,
                              const CpuEfficiency& eff = {});

/// Working-set of one benchmark (variables + auxiliaries + contributions).
Bytes working_set_bytes(const mapping::Problem& problem);

}  // namespace wavepim::gpumodel
