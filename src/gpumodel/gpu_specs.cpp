#include "gpumodel/gpu_specs.h"

namespace wavepim::gpumodel {

GpuSpec gtx_1080ti() {
  return {.name = "GTX 1080Ti",
          .peak_fp32_flops = 11.5e12,
          .mem_bandwidth_bps = 484.0e9,
          .board_power_w = 250.0,
          .host_power_w = 135.0,  // E5-2698 v4
          .cuda_cores = 3584,
          .clock_mhz = 1530.0};
}

GpuSpec tesla_p100() {
  return {.name = "Tesla P100",
          .peak_fp32_flops = 10.6e12,
          .mem_bandwidth_bps = 720.0e9,
          .board_power_w = 250.0,
          .host_power_w = 150.0,  // Xeon Platinum 8160
          .cuda_cores = 3584,
          .clock_mhz = 1480.0};
}

GpuSpec tesla_v100() {
  return {.name = "Tesla V100",
          .peak_fp32_flops = 15.7e12,
          .mem_bandwidth_bps = 900.0e9,
          .board_power_w = 300.0,
          .host_power_w = 150.0,
          .cuda_cores = 5120,
          .clock_mhz = 1582.0};
}

std::array<GpuSpec, 3> paper_gpus() {
  return {gtx_1080ti(), tesla_p100(), tesla_v100()};
}

CpuSpec dual_xeon_8160() { return {}; }

}  // namespace wavepim::gpumodel
