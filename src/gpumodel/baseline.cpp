#include "gpumodel/baseline.h"

#include <algorithm>

#include "common/error.h"
#include "dg/rk.h"
#include "mapping/layout.h"

namespace wavepim::gpumodel {

const char* to_string(GpuImplementation impl) {
  return impl == GpuImplementation::Unfused ? "Unfused" : "Fused";
}

namespace {

double flux_compute_efficiency(dg::ProblemKind kind,
                               const GpuEfficiency& eff) {
  return dg::flux_of(kind) == dg::FluxType::Central
             ? eff.compute_flux_central
             : eff.compute_flux_riemann;
}

double flux_bandwidth_efficiency(dg::ProblemKind kind,
                                 const GpuEfficiency& eff) {
  return eff.bandwidth * (dg::flux_of(kind) == dg::FluxType::Central
                              ? eff.flux_bandwidth_central
                              : eff.flux_bandwidth_riemann);
}

/// Roofline kernel time: the slower of the compute and memory legs.
Seconds kernel_time(const dg::KernelOps& ops, double peak_flops,
                    double compute_eff, double peak_bw, double bw_eff) {
  const double t_compute =
      static_cast<double>(ops.flops) / (peak_flops * compute_eff);
  const double t_memory =
      static_cast<double>(ops.bytes_total()) / (peak_bw * bw_eff);
  return Seconds(std::max(t_compute, t_memory));
}

}  // namespace

Bytes working_set_bytes(const mapping::Problem& problem) {
  return problem.num_elements() *
         mapping::element_state_bytes(problem.kind, problem.n1d);
}

GpuKernelTimes gpu_kernel_times(const mapping::Problem& problem,
                                const GpuSpec& gpu,
                                const GpuEfficiency& eff) {
  const auto ops = dg::count_problem_ops(problem.kind,
                                         problem.num_elements(), problem.n1d);
  auto bound = [&](const dg::KernelOps& k, double ce, double be) {
    const double t_c = static_cast<double>(k.flops) /
                       (gpu.peak_fp32_flops * ce);
    const double t_m = static_cast<double>(k.bytes_total()) /
                       (gpu.mem_bandwidth_bps * be);
    return t_c > t_m;
  };
  GpuKernelTimes t;
  t.volume = kernel_time(ops.volume, gpu.peak_fp32_flops, eff.compute_volume,
                         gpu.mem_bandwidth_bps, eff.bandwidth);
  t.flux = kernel_time(ops.flux, gpu.peak_fp32_flops,
                       flux_compute_efficiency(problem.kind, eff),
                       gpu.mem_bandwidth_bps,
                       flux_bandwidth_efficiency(problem.kind, eff));
  t.integration = kernel_time(ops.integration, gpu.peak_fp32_flops,
                              eff.compute_integration, gpu.mem_bandwidth_bps,
                              eff.bandwidth);
  t.volume_compute_bound =
      bound(ops.volume, eff.compute_volume, eff.bandwidth);
  t.flux_compute_bound =
      bound(ops.flux, flux_compute_efficiency(problem.kind, eff),
            flux_bandwidth_efficiency(problem.kind, eff));
  t.integration_compute_bound =
      bound(ops.integration, eff.compute_integration, eff.bandwidth);
  return t;
}

PlatformEstimate estimate_gpu(const mapping::Problem& problem,
                              const GpuSpec& gpu, GpuImplementation impl,
                              std::uint64_t steps, const GpuEfficiency& eff) {
  WAVEPIM_REQUIRE(steps > 0, "run needs at least one step");
  const auto ops = dg::count_problem_ops(problem.kind,
                                         problem.num_elements(), problem.n1d);

  Seconds stage(0.0);
  if (impl == GpuImplementation::Unfused) {
    stage += kernel_time(ops.volume, gpu.peak_fp32_flops, eff.compute_volume,
                         gpu.mem_bandwidth_bps, eff.bandwidth);
    stage += kernel_time(ops.flux, gpu.peak_fp32_flops,
                         flux_compute_efficiency(problem.kind, eff),
                         gpu.mem_bandwidth_bps,
                         flux_bandwidth_efficiency(problem.kind, eff));
    stage += kernel_time(ops.integration, gpu.peak_fp32_flops,
                         eff.compute_integration, gpu.mem_bandwidth_bps,
                         eff.bandwidth);
    stage += eff.kernel_launch_overhead * 3.0;
  } else {
    // Fused Volume+Flux: summed FLOPs, reduced traffic, less divergence.
    dg::KernelOps merged = ops.volume;
    merged += ops.flux;
    merged.bytes_read = static_cast<Bytes>(
        static_cast<double>(merged.bytes_read) * eff.fused_traffic_factor);
    merged.bytes_written = static_cast<Bytes>(
        static_cast<double>(merged.bytes_written) * eff.fused_traffic_factor);
    const double fused_flux_eff =
        std::min(eff.compute_volume,
                 flux_compute_efficiency(problem.kind, eff) *
                     eff.fused_divergence_recovery);
    stage += kernel_time(merged, gpu.peak_fp32_flops, fused_flux_eff,
                         gpu.mem_bandwidth_bps, eff.bandwidth);
    stage += kernel_time(ops.integration, gpu.peak_fp32_flops,
                         eff.compute_integration, gpu.mem_bandwidth_bps,
                         eff.bandwidth);
    stage += eff.kernel_launch_overhead * 2.0;
  }

  PlatformEstimate est;
  est.platform = std::string(to_string(impl)) + "-" + gpu.name;
  est.step_time = stage * static_cast<double>(dg::Lsrk54::kNumStages);
  est.total_time = est.step_time * static_cast<double>(steps);
  // Memory-bound kernels keep the board near its power limit; the host
  // stays busy orchestrating launches.
  const double system_power = 0.9 * gpu.board_power_w + gpu.host_power_w;
  est.total_energy = energy_at(system_power, est.total_time);
  est.achieved_flops =
      static_cast<double>(ops.total().flops) * dg::Lsrk54::kNumStages *
      static_cast<double>(steps) / est.total_time.value();
  return est;
}

PlatformEstimate estimate_cpu(const mapping::Problem& problem,
                              const CpuSpec& cpu, std::uint64_t steps,
                              const CpuEfficiency& eff) {
  WAVEPIM_REQUIRE(steps > 0, "run needs at least one step");
  const auto ops = dg::count_problem_ops(problem.kind,
                                         problem.num_elements(), problem.n1d);
  // Cache-pressure decay of the achieved bandwidth: the p4est reference
  // streams an unblocked working set every kernel.
  const double ws = static_cast<double>(working_set_bytes(problem));
  const double knee = static_cast<double>(eff.cache_knee);
  const double bw_eff = eff.bandwidth_base * knee / (knee + ws);

  const auto total = ops.total();
  const double t_compute =
      static_cast<double>(total.flops) / (cpu.peak_fp32_flops * eff.compute);
  const double t_memory = static_cast<double>(total.bytes_total()) /
                          (cpu.mem_bandwidth_bps * bw_eff);
  const Seconds stage(std::max(t_compute, t_memory));

  PlatformEstimate est;
  est.platform = "CPU-" + cpu.name;
  est.step_time = stage * static_cast<double>(dg::Lsrk54::kNumStages);
  est.total_time = est.step_time * static_cast<double>(steps);
  est.total_energy = energy_at(cpu.package_power_w, est.total_time);
  est.achieved_flops =
      static_cast<double>(total.flops) * dg::Lsrk54::kNumStages *
      static_cast<double>(steps) / est.total_time.value();
  return est;
}

}  // namespace wavepim::gpumodel
