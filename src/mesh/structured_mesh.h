#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "mesh/face.h"

namespace wavepim::mesh {

/// Linear element index into the mesh.
using ElementId = std::uint32_t;

/// Treatment of the domain boundary.
///
/// `Periodic` wraps neighbours around (used by the conservation and
/// plane-wave tests); `Reflective` is a rigid wall (pressure-release /
/// traction-free handled at the flux level by mirroring the state).
enum class Boundary : std::uint8_t { Periodic, Reflective };

/// A structured mesh of (2^level)^3 identical cube elements covering an
/// `extent`-sided cube, mirroring the paper's "Refinement Level n
/// discretises the domain into (2^n)^3 elements" (Table 1).
class StructuredMesh {
 public:
  /// `level` >= 0; `extent` is the physical edge length of the domain.
  StructuredMesh(int level, double extent, Boundary boundary);

  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] Boundary boundary() const { return boundary_; }
  /// Number of elements per axis (2^level).
  [[nodiscard]] std::uint32_t dim() const { return dim_; }
  [[nodiscard]] std::uint32_t num_elements() const {
    return dim_ * dim_ * dim_;
  }
  /// Physical edge length of one element.
  [[nodiscard]] double element_size() const { return h_; }
  [[nodiscard]] double extent() const { return extent_; }

  /// (i, j, k) grid coordinates of an element; i is fastest (x axis).
  [[nodiscard]] std::array<std::uint32_t, 3> coords_of(ElementId e) const;
  [[nodiscard]] ElementId element_at(std::uint32_t i, std::uint32_t j,
                                     std::uint32_t k) const;

  /// Physical coordinates of the low corner of an element.
  [[nodiscard]] std::array<double, 3> corner_of(ElementId e) const;

  /// Neighbour across a face; nullopt on a reflective boundary.
  [[nodiscard]] std::optional<ElementId> neighbor(ElementId e, Face f) const;

  /// True if the face lies on the physical boundary (regardless of whether
  /// the boundary wraps periodically).
  [[nodiscard]] bool on_boundary(ElementId e, Face f) const;

  /// The element that contains a physical point (clamped to the domain).
  [[nodiscard]] ElementId element_containing(double x, double y,
                                             double z) const;

  /// --- Slice decomposition (paper §6.1.2, Fig. 7) ------------------------
  /// Flux batching splits the mesh into `dim()` slices along the Y axis:
  /// X- and Z-direction fluxes stay within a slice, only Y-direction
  /// fluxes cross slices.
  [[nodiscard]] std::uint32_t num_slices() const { return dim_; }
  [[nodiscard]] std::uint32_t slice_of(ElementId e) const;
  [[nodiscard]] std::uint32_t elements_per_slice() const {
    return dim_ * dim_;
  }

 private:
  int level_;
  std::uint32_t dim_;
  double extent_;
  double h_;
  Boundary boundary_;
};

}  // namespace wavepim::mesh
