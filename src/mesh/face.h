#pragma once

#include <array>
#include <cstdint>

#include "common/error.h"

namespace wavepim::mesh {

/// Spatial axes of the structured mesh.
enum class Axis : std::uint8_t { X = 0, Y = 1, Z = 2 };

inline constexpr std::array<Axis, 3> kAllAxes = {Axis::X, Axis::Y, Axis::Z};

/// The six faces of a hexahedral element, named by axis and outward-normal
/// sign. Matches the paper's "3 axes × 2 normal vectors (−1, +1)" flux
/// decomposition (§6.1.2).
enum class Face : std::uint8_t {
  XMinus = 0,
  XPlus = 1,
  YMinus = 2,
  YPlus = 3,
  ZMinus = 4,
  ZPlus = 5,
};

inline constexpr std::array<Face, 6> kAllFaces = {
    Face::XMinus, Face::XPlus, Face::YMinus,
    Face::YPlus,  Face::ZMinus, Face::ZPlus,
};

/// Axis a face is orthogonal to.
constexpr Axis axis_of(Face f) {
  return static_cast<Axis>(static_cast<std::uint8_t>(f) / 2);
}

/// Outward normal sign along that axis: −1 or +1.
constexpr int normal_sign(Face f) {
  return (static_cast<std::uint8_t>(f) % 2 == 0) ? -1 : +1;
}

/// The matching face on the neighbouring element.
constexpr Face opposite(Face f) {
  return static_cast<Face>(static_cast<std::uint8_t>(f) ^ 1u);
}

/// Face from (axis, sign).
constexpr Face make_face(Axis a, int sign) {
  return static_cast<Face>(2 * static_cast<std::uint8_t>(a) +
                           (sign > 0 ? 1 : 0));
}

constexpr std::uint8_t index_of(Face f) { return static_cast<std::uint8_t>(f); }
constexpr std::uint8_t index_of(Axis a) { return static_cast<std::uint8_t>(a); }

const char* to_string(Face f);
const char* to_string(Axis a);

}  // namespace wavepim::mesh
