#include "mesh/structured_mesh.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace wavepim::mesh {

StructuredMesh::StructuredMesh(int level, double extent, Boundary boundary)
    : level_(level),
      dim_(1u << level),
      extent_(extent),
      h_(extent / static_cast<double>(1u << level)),
      boundary_(boundary) {
  WAVEPIM_REQUIRE(level >= 0 && level <= 10, "refinement level out of range");
  WAVEPIM_REQUIRE(extent > 0.0, "domain extent must be positive");
}

std::array<std::uint32_t, 3> StructuredMesh::coords_of(ElementId e) const {
  WAVEPIM_REQUIRE(e < num_elements(), "element id out of range");
  return {e % dim_, (e / dim_) % dim_, e / (dim_ * dim_)};
}

ElementId StructuredMesh::element_at(std::uint32_t i, std::uint32_t j,
                                     std::uint32_t k) const {
  WAVEPIM_REQUIRE(i < dim_ && j < dim_ && k < dim_, "grid coords out of range");
  return i + dim_ * (j + dim_ * k);
}

std::array<double, 3> StructuredMesh::corner_of(ElementId e) const {
  const auto c = coords_of(e);
  return {c[0] * h_, c[1] * h_, c[2] * h_};
}

std::optional<ElementId> StructuredMesh::neighbor(ElementId e, Face f) const {
  auto c = coords_of(e);
  const auto a = index_of(axis_of(f));
  const int s = normal_sign(f);
  if (s < 0 && c[a] == 0) {
    if (boundary_ == Boundary::Reflective) {
      return std::nullopt;
    }
    c[a] = dim_ - 1;
  } else if (s > 0 && c[a] == dim_ - 1) {
    if (boundary_ == Boundary::Reflective) {
      return std::nullopt;
    }
    c[a] = 0;
  } else {
    c[a] = static_cast<std::uint32_t>(static_cast<int>(c[a]) + s);
  }
  return element_at(c[0], c[1], c[2]);
}

bool StructuredMesh::on_boundary(ElementId e, Face f) const {
  const auto c = coords_of(e);
  const auto a = index_of(axis_of(f));
  return normal_sign(f) < 0 ? (c[a] == 0) : (c[a] == dim_ - 1);
}

ElementId StructuredMesh::element_containing(double x, double y,
                                             double z) const {
  auto clamp_idx = [&](double v) {
    const auto idx = static_cast<std::int64_t>(std::floor(v / h_));
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(idx, 0, dim_ - 1));
  };
  return element_at(clamp_idx(x), clamp_idx(y), clamp_idx(z));
}

std::uint32_t StructuredMesh::slice_of(ElementId e) const {
  return coords_of(e)[1];
}

}  // namespace wavepim::mesh
