#include "mesh/face.h"

namespace wavepim::mesh {

const char* to_string(Face f) {
  switch (f) {
    case Face::XMinus:
      return "x-";
    case Face::XPlus:
      return "x+";
    case Face::YMinus:
      return "y-";
    case Face::YPlus:
      return "y+";
    case Face::ZMinus:
      return "z-";
    case Face::ZPlus:
      return "z+";
  }
  return "?";
}

const char* to_string(Axis a) {
  switch (a) {
    case Axis::X:
      return "x";
    case Axis::Y:
      return "y";
    case Axis::Z:
      return "z";
  }
  return "?";
}

}  // namespace wavepim::mesh
