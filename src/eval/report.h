#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "eval/runner.h"

namespace wavepim::eval {

inline constexpr const char* kReportSchema = "wavepim-paper-eval/1";

/// Serialises a matrix run: schema tag, matrix name, one object per
/// cell (labels, then metrics, both in insertion order) and the shape-
/// claim verdicts. Deterministic: the same MatrixResult always dumps to
/// the same bytes (tests/eval/determinism_test.cpp pins this per cell).
[[nodiscard]] json::Value report_to_json(const MatrixResult& result);

/// One cell as its JSON object (the unit the determinism test compares).
[[nodiscard]] json::Value cell_to_json(const CellResult& cell);

/// Renders the human-readable companion of the JSON report: the
/// Fig. 11/12-style performance and energy tables (when the run carries
/// paper cells), the sim-cell conformance table, and the claim verdicts.
[[nodiscard]] std::string render_tables(const MatrixResult& result);

struct DiffOptions {
  /// Maximum allowed per-metric relative deviation |cur-base| divided
  /// by max(|base|, |cur|). The matrix metrics are model outputs — not
  /// wall-clock — so the default is tight; `--fail-above` widens it.
  double tolerance = 1e-6;
};

struct DiffResult {
  int compared = 0;     ///< cells present in both reports
  int regressions = 0;  ///< metric beyond tolerance or label mismatch
  int added = 0;        ///< cells in the run but not in the baseline
  int ignored = 0;      ///< baseline cells the run did not cover
  double worst = 0.0;   ///< largest relative deviation seen
  std::string table;    ///< human-readable summary of the deviations

  [[nodiscard]] bool ok() const { return regressions == 0; }
};

/// Compares a run report against a committed baseline, cell by cell.
/// Labels (incl. field hashes) must match exactly; metrics within the
/// relative tolerance. Baseline cells the run did not execute are
/// ignored (a reduced run gates against the full baseline); run cells
/// missing from the baseline are reported as new, not failed.
[[nodiscard]] DiffResult diff_reports(const json::Value& baseline,
                                      const json::Value& current,
                                      const DiffOptions& options = {});

/// Merges a run into a baseline document: existing cells keep their
/// order and are replaced when re-run, new cells append, and the claim
/// list is taken from the run when it has one. `existing` may be null
/// (fresh baseline).
[[nodiscard]] json::Value merge_baseline(const json::Value* existing,
                                         const json::Value& current);

}  // namespace wavepim::eval
