#include "eval/figures.h"

#include <cstdio>
#include <map>

#include "common/statistics.h"
#include "mapping/estimator.h"

namespace wavepim::eval {

namespace {

constexpr const char* kPimConfigs[] = {"PIM-512MB-12nm", "PIM-2GB-12nm",
                                       "PIM-8GB-12nm", "PIM-16GB-12nm"};

const core::ComparisonRow* find_row(
    const std::vector<core::ComparisonRow>& grid, const std::string& name) {
  for (const auto& row : grid) {
    if (row.platform == name) {
      return &row;
    }
  }
  return nullptr;
}

int find_problem(const FigureData& data, const std::string& name) {
  for (std::size_t i = 0; i < data.problems.size(); ++i) {
    if (data.problems[i].name() == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Per-capacity geomean speedup of the detailed model and the paper's
/// peak-throughput methodology across every benchmark in the sweep.
struct PimAverages {
  std::map<std::string, double> detailed;
  std::map<std::string, double> peak;
};

PimAverages pim_speedup_averages(const FigureData& data) {
  PimAverages avg;
  for (const char* name : kPimConfigs) {
    avg.detailed[name] =
        core::System::summarize_pim(data.grids, name).mean_speedup;
    std::vector<double> peak_speedups;
    for (const auto& grid : data.grids) {
      const auto* base = find_row(grid, grid[0].platform);
      const auto* pim = find_row(grid, name);
      if (base != nullptr && pim != nullptr) {
        peak_speedups.push_back(base->step_time.value() /
                                pim->step_time_peak_method.value());
      }
    }
    avg.peak[name] = geomean(peak_speedups);
  }
  return avg;
}

TextTable grid_table(const FigureData& data, bool energy) {
  std::vector<std::string> header = {energy
                                         ? "Platform (normalized energy)"
                                         : "Platform (normalized time)"};
  for (const auto& p : data.problems) {
    header.push_back(p.name());
  }
  TextTable table(std::move(header));
  for (std::size_t r = 0; r < data.grids[0].size(); ++r) {
    std::vector<std::string> cells = {data.grids[0][r].platform};
    for (const auto& grid : data.grids) {
      cells.push_back(TextTable::num(
          energy ? grid[r].normalized_energy : grid[r].normalized_time, 3));
    }
    table.add_row(cells);
  }
  return table;
}

}  // namespace

FigureData compute_figure_data(std::span<const mapping::Problem> problems,
                               std::uint64_t steps) {
  FigureData data;
  for (const auto& problem : problems) {
    data.problems.push_back(problem);
    data.grids.push_back(core::System::compare_all(problem, steps));
  }
  return data;
}

TextTable fig11_table(const FigureData& data) {
  return grid_table(data, /*energy=*/false);
}

TextTable fig12_table(const FigureData& data) {
  return grid_table(data, /*energy=*/true);
}

TextTable fig11_summary_table(const FigureData& data) {
  const PimAverages avg = pim_speedup_averages(data);
  TextTable table({"PIM config", "Detailed model", "Peak-throughput method"});
  for (const char* name : kPimConfigs) {
    table.add_row({name, TextTable::ratio(avg.detailed.at(name)),
                   TextTable::ratio(avg.peak.at(name))});
  }
  return table;
}

TextTable fig12_summary_table(const FigureData& data) {
  TextTable table({"PIM config", "Energy saving (model)"});
  for (const char* name : kPimConfigs) {
    table.add_row(
        {name, TextTable::ratio(core::System::summarize_pim(data.grids, name)
                                    .mean_energy_saving)});
  }
  return table;
}

std::vector<ShapeClaim> fig11_claims(const FigureData& data) {
  std::vector<ShapeClaim> claims;
  const PimAverages avg = pim_speedup_averages(data);
  const auto& d = avg.detailed;
  claims.push_back(
      {"average speedup grows with PIM capacity (paper ordering)",
       d.at("PIM-512MB-12nm") < d.at("PIM-2GB-12nm") &&
           d.at("PIM-2GB-12nm") < d.at("PIM-8GB-12nm") &&
           d.at("PIM-8GB-12nm") < d.at("PIM-16GB-12nm")});
  claims.push_back({"PIM-2GB beats the unfused GTX 1080Ti on average",
                    d.at("PIM-2GB-12nm") > 1.0});
  claims.push_back({"PIM-16GB wins by a large factor on average",
                    d.at("PIM-16GB-12nm") > 5.0});

  for (std::size_t b = 0; b < data.problems.size(); ++b) {
    const auto* fused_v100 = find_row(data.grids[b], "Fused-Tesla V100");
    const auto* pim16 = find_row(data.grids[b], "PIM-16GB-12nm");
    if (fused_v100 != nullptr && pim16 != nullptr) {
      claims.push_back({data.problems[b].name() +
                            ": PIM-16GB-12nm beats even the fused V100",
                        pim16->total_time < fused_v100->total_time});
    }
  }

  // "The speedup of Elastic-Riemann on PIM is below the average" (§7.3).
  const int riemann = find_problem(data, "Elastic-Riemann_4");
  const int acoustic = find_problem(data, "Acoustic_4");
  if (riemann >= 0 && acoustic >= 0) {
    const auto* r = find_row(data.grids[riemann], "PIM-2GB-12nm");
    const auto* a = find_row(data.grids[acoustic], "PIM-2GB-12nm");
    claims.push_back({"Elastic-Riemann gains less than Acoustic on PIM "
                      "(compute-intense, §7.3)",
                      r != nullptr && a != nullptr &&
                          r->speedup < a->speedup});
  }
  return claims;
}

std::vector<ShapeClaim> fig12_claims(const FigureData& data) {
  std::vector<ShapeClaim> claims;
  claims.push_back(
      {"PIM-2GB saves energy vs the unfused GTX 1080Ti",
       core::System::summarize_pim(data.grids, "PIM-2GB-12nm")
               .mean_energy_saving > 1.0});

  // §7.4: small problems on big chips waste static power, so the biggest
  // chips do NOT have the biggest savings.
  const int acoustic = find_problem(data, "Acoustic_4");
  if (acoustic >= 0) {
    const auto* small = find_row(data.grids[acoustic], "PIM-512MB-12nm");
    const auto* big = find_row(data.grids[acoustic], "PIM-16GB-12nm");
    claims.push_back(
        {"Acoustic_4 saves more energy on the right-sized 512MB chip "
         "than on 16GB (§7.4 trade-off)",
         small != nullptr && big != nullptr &&
             small->energy_saving > big->energy_saving});
  }

  double best = 0.0;
  for (const auto& grid : data.grids) {
    for (const auto& row : grid) {
      if (row.is_pim) {
        best = std::max(best, row.energy_saving);
      }
    }
  }
  claims.push_back({"peak energy saving exceeds 10x", best > 10.0});
  return claims;
}

Fig14Data compute_fig14_data(pim::NetBackendKind backend) {
  struct Case {
    mapping::Problem problem;
    pim::ChipConfig (*chip)(pim::Topology);
    const char* label;
  };
  // The paper's four cases: the no-expansion pair (Acoustic_4/512MB,
  // Elastic-Central_4/2GB) and the expansion pair (Acoustic_4/2GB,
  // Elastic-Central_4/8GB) where the Fig. 14 inter-element share jumps.
  const Case cases[] = {
      {{dg::ProblemKind::Acoustic, 4, 8}, pim::chip_512mb,
       "Acoustic_4 / 512MB (N)"},
      {{dg::ProblemKind::Acoustic, 4, 8}, pim::chip_2gb,
       "Acoustic_4 / 2GB (Ep)"},
      {{dg::ProblemKind::ElasticCentral, 4, 8}, pim::chip_2gb,
       "Elastic-Central_4 / 2GB (Er)"},
      {{dg::ProblemKind::ElasticCentral, 4, 8}, pim::chip_8gb,
       "Elastic-Central_4 / 8GB (Er&Ep)"},
  };
  Fig14Data data;
  data.backend = backend;
  for (const auto& c : cases) {
    for (const auto topo : {pim::Topology::HTree, pim::Topology::Bus}) {
      pim::ChipConfig chip = c.chip(topo);
      chip.net_backend = backend;
      const mapping::Estimator estimator(c.problem, chip);
      const auto& est = estimator.estimate();
      Fig14Row row;
      row.label = c.label;
      row.topology = topo;
      row.flux_intra = est.flux_intra_element;
      row.flux_inter = est.flux_inter_element;
      row.step_time = est.step_time;
      const double flux =
          (est.flux_intra_element + est.flux_inter_element).value();
      row.inter_share =
          flux > 0.0 ? 100.0 * est.flux_inter_element.value() / flux : 0.0;
      data.rows.push_back(std::move(row));
    }
  }
  return data;
}

TextTable fig14_table(const Fig14Data& data) {
  TextTable table({"Case", "Topology", "Intra-element (us)",
                   "Inter-element (us)", "Inter share", "Step time (us)"});
  for (const auto& row : data.rows) {
    table.add_row({row.label, pim::to_string(row.topology),
                   TextTable::num(row.flux_intra.value() * 1e6, 4),
                   TextTable::num(row.flux_inter.value() * 1e6, 4),
                   TextTable::num(row.inter_share, 3) + "%",
                   TextTable::num(row.step_time.value() * 1e6, 4)});
  }
  return table;
}

std::vector<ShapeClaim> fig14_claims(const Fig14Data& data) {
  std::vector<ShapeClaim> claims;
  if (data.rows.size() < 2 || data.rows.size() % 2 != 0) {
    return claims;
  }
  const char* backend = pim::to_string(data.backend);
  bool every_case = true;
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i + 1 < data.rows.size(); i += 2) {
    const double htree =
        (data.rows[i].flux_intra + data.rows[i].flux_inter).value();
    const double bus =
        (data.rows[i + 1].flux_intra + data.rows[i + 1].flux_inter).value();
    every_case = every_case && bus > htree;
    ratio_sum += htree > 0.0 ? bus / htree : 0.0;
  }
  const double mean_ratio =
      ratio_sum / (static_cast<double>(data.rows.size()) / 2.0);
  claims.push_back({std::string(backend) +
                        " backend: Bus flux execution slower than H-tree "
                        "on every Fig. 14 case",
                    every_case});
  char headline[160];
  std::snprintf(headline, sizeof(headline),
                "%s backend derives H-tree >= 2x over Bus on Fig. 14 flux "
                "execution (mean %.2fx; paper: ~2.16x)",
                backend, mean_ratio);
  claims.push_back({headline, mean_ratio >= 2.0});
  if (data.rows.size() >= 4) {
    // The H-tree rows of the (N) and (Ep) acoustic cases: expansion
    // shifts flux work toward neighbour transfers.
    claims.push_back({"expansion raises the inter-element share (Fig. 14)",
                      data.rows[2].inter_share > data.rows[0].inter_share});
  }
  return claims;
}

}  // namespace wavepim::eval
