#include "eval/matrix.h"

#include "common/error.h"

namespace wavepim::eval {

const char* to_string(CellKind kind) {
  return kind == CellKind::Paper ? "paper" : "sim";
}

const char* to_string(Materials materials) {
  return materials == Materials::Uniform ? "uniform" : "layered";
}

const char* to_string(MatrixKind kind) {
  return kind == MatrixKind::Reduced ? "reduced" : "full";
}

bool parse_matrix(std::string_view name, MatrixKind& out) {
  if (name == "reduced") {
    out = MatrixKind::Reduced;
    return true;
  }
  if (name == "full") {
    out = MatrixKind::Full;
    return true;
  }
  return false;
}

namespace {

/// CLI-style lowercase physics name (matches wavepim's <physics> args).
const char* physics_slug(dg::ProblemKind kind) {
  switch (kind) {
    case dg::ProblemKind::Acoustic:
      return "acoustic";
    case dg::ProblemKind::ElasticCentral:
      return "elastic-central";
    case dg::ProblemKind::ElasticRiemann:
      return "elastic-riemann";
  }
  return "?";
}

}  // namespace

std::string Scenario::id() const {
  if (kind == CellKind::Paper) {
    return "paper/" + problem.name();
  }
  std::string out = "sim/";
  out += physics_slug(problem.kind);
  out += "-l" + std::to_string(problem.refinement_level);
  out += "/";
  out += mapping::to_string(expansion);
  out += boundary == mesh::Boundary::Periodic ? "/periodic" : "/reflective";
  out += "/";
  out += to_string(materials);
  out += block_limit == 0 ? std::string("/resident")
                          : "/win" + std::to_string(block_limit);
  out += "/";
  out += mapping::to_string(exec);
  if (net_backend == pim::NetBackendKind::Cycle) {
    out += "/net-cycle";
  }
  return out;
}

namespace {

using dg::ProblemKind;
using mapping::ExecPath;
using mapping::ExpansionMode;
using mesh::Boundary;

constexpr ExecPath kAllTiers[] = {ExecPath::Emit, ExecPath::Replay,
                                  ExecPath::Compiled, ExecPath::Word};

Scenario paper(const mapping::Problem& problem) {
  Scenario s;
  s.kind = CellKind::Paper;
  s.problem = problem;
  return s;
}

/// Sim scenario on the small validation meshes (n1d = 3, the
/// conformance suites' element size). All sim cells run `sim_steps`
/// RK-stepped time steps from the shared seeded state.
Scenario sim(ProblemKind kind, int level, ExpansionMode expansion,
             Boundary boundary, Materials materials,
             std::uint32_t block_limit, ExecPath exec,
             pim::NetBackendKind net = pim::NetBackendKind::Analytic) {
  Scenario s;
  s.kind = CellKind::Sim;
  s.problem = mapping::Problem{kind, level, 3};
  s.expansion = expansion;
  s.boundary = boundary;
  s.materials = materials;
  s.block_limit = block_limit;
  s.exec = exec;
  s.net_backend = net;
  return s;
}

}  // namespace

std::vector<Scenario> build_matrix(MatrixKind kind) {
  std::vector<Scenario> out;
  const auto benchmarks = mapping::paper_benchmarks();

  if (kind == MatrixKind::Reduced) {
    // Two paper benchmarks bracket the physics/flux axes (cheapest and
    // most compute-intense); the sim slice runs all four execution
    // tiers against one over-capacity window plus one cell on each
    // beyond-paper axis.
    out.push_back(paper(benchmarks[0]));  // Acoustic_4
    out.push_back(paper(benchmarks[2]));  // Elastic-Riemann_4
    for (const std::uint32_t limit : {0u, 32u}) {
      for (const ExecPath tier : kAllTiers) {
        out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                          Boundary::Periodic, Materials::Uniform, limit,
                          tier));
      }
    }
    out.push_back(sim(ProblemKind::ElasticCentral, 2, ExpansionMode::Elastic3,
                      Boundary::Periodic, Materials::Uniform, 0,
                      ExecPath::Compiled));
    out.push_back(sim(ProblemKind::ElasticRiemann, 1, ExpansionMode::Elastic9,
                      Boundary::Periodic, Materials::Uniform, 0,
                      ExecPath::Compiled));
    out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                      Boundary::Reflective, Materials::Uniform, 0,
                      ExecPath::Compiled));
    out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                      Boundary::Periodic, Materials::Layered, 0,
                      ExecPath::Compiled));
    // Cycle net-backend axis (resident and windowed): pricing-only, so
    // these cells must reproduce the analytic cells' field hashes while
    // adding the queuing metrics the analytic scheduler cannot see.
    for (const std::uint32_t limit : {0u, 32u}) {
      out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                        Boundary::Periodic, Materials::Uniform, limit,
                        ExecPath::Compiled, pim::NetBackendKind::Cycle));
    }
    return out;
  }

  // Full matrix: all six paper benchmarks (enables the Fig. 11/12 shape
  // claims) and the complete sim axis coverage.
  for (const auto& problem : benchmarks) {
    out.push_back(paper(problem));
  }

  // Physics x tier x residency (uniform, periodic). Window sizes are
  // one resident slice + the Fig. 7 staging slot at each problem's
  // blocks-per-slice.
  for (const std::uint32_t limit : {0u, 32u}) {
    for (const ExecPath tier : kAllTiers) {
      out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                        Boundary::Periodic, Materials::Uniform, limit, tier));
    }
  }
  for (const ExecPath tier : kAllTiers) {
    out.push_back(sim(ProblemKind::ElasticCentral, 2, ExpansionMode::Elastic3,
                      Boundary::Periodic, Materials::Uniform, 0, tier));
  }
  out.push_back(sim(ProblemKind::ElasticCentral, 2, ExpansionMode::Elastic3,
                    Boundary::Periodic, Materials::Uniform, 96,
                    ExecPath::Compiled));
  for (const ExecPath tier : kAllTiers) {
    out.push_back(sim(ProblemKind::ElasticRiemann, 1, ExpansionMode::Elastic9,
                      Boundary::Periodic, Materials::Uniform, 0, tier));
  }
  out.push_back(sim(ProblemKind::ElasticRiemann, 2, ExpansionMode::Elastic9,
                    Boundary::Periodic, Materials::Uniform, 288,
                    ExecPath::Compiled));

  // Expansion axis beyond the Table 5 defaults: the acoustic 4-block
  // split, resident and through a window.
  out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::Acoustic4,
                    Boundary::Periodic, Materials::Uniform, 0,
                    ExecPath::Compiled));
  out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::Acoustic4,
                    Boundary::Periodic, Materials::Uniform, 128,
                    ExecPath::Compiled));

  // Beyond-paper boundary axis (reflective walls; the PIM mapping
  // supports periodic/reflective — absorbing layers exist only in the
  // CPU DG solver and are documented as a deviation).
  out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                    Boundary::Reflective, Materials::Uniform, 0,
                    ExecPath::Compiled));
  out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                    Boundary::Reflective, Materials::Uniform, 32,
                    ExecPath::Compiled));
  out.push_back(sim(ProblemKind::ElasticCentral, 1, ExpansionMode::Elastic3,
                    Boundary::Reflective, Materials::Uniform, 0,
                    ExecPath::Compiled));

  // Beyond-paper heterogeneous-materials axis (two-layer media), alone
  // and combined with a window and with reflective walls.
  out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                    Boundary::Periodic, Materials::Layered, 0,
                    ExecPath::Compiled));
  out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                    Boundary::Periodic, Materials::Layered, 32,
                    ExecPath::Compiled));
  out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                    Boundary::Reflective, Materials::Layered, 0,
                    ExecPath::Compiled));
  out.push_back(sim(ProblemKind::ElasticCentral, 1, ExpansionMode::Elastic3,
                    Boundary::Periodic, Materials::Layered, 0,
                    ExecPath::Compiled));

  // Cycle net-backend axis: every tier resident (the backend must leave
  // each tier's field hash untouched), the reduced matrix's windowed
  // cell, and one elastic point with its heavier flux traffic.
  for (const ExecPath tier : kAllTiers) {
    out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                      Boundary::Periodic, Materials::Uniform, 0, tier,
                      pim::NetBackendKind::Cycle));
  }
  out.push_back(sim(ProblemKind::Acoustic, 2, ExpansionMode::None,
                    Boundary::Periodic, Materials::Uniform, 32,
                    ExecPath::Compiled, pim::NetBackendKind::Cycle));
  out.push_back(sim(ProblemKind::ElasticCentral, 2, ExpansionMode::Elastic3,
                    Boundary::Periodic, Materials::Uniform, 0,
                    ExecPath::Compiled, pim::NetBackendKind::Cycle));
  return out;
}

}  // namespace wavepim::eval
