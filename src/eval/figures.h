#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/wavepim.h"
#include "mapping/config.h"

namespace wavepim::eval {

/// One qualitative claim the paper's evaluation makes (a Fig. 11/12
/// trend), evaluated against the model. The figure benches and the
/// paper_eval driver consume the same claim list, so a bench PASS and a
/// matrix-report PASS agree by construction.
struct ShapeClaim {
  std::string claim;
  bool pass = false;
};

/// The comparison grids behind Figs. 11/12: one compare_all() result per
/// benchmark, platform order identical in each.
struct FigureData {
  std::vector<mapping::Problem> problems;
  std::vector<std::vector<core::ComparisonRow>> grids;
};

/// Runs the platform sweep for `problems` over `steps` time steps.
[[nodiscard]] FigureData compute_figure_data(
    std::span<const mapping::Problem> problems, std::uint64_t steps = 1024);

/// Fig. 11 main table: normalised execution time (baseline = 1.0), one
/// row per platform, one column per benchmark.
[[nodiscard]] TextTable fig11_table(const FigureData& data);

/// Fig. 12 main table: normalised energy.
[[nodiscard]] TextTable fig12_table(const FigureData& data);

/// Average PIM speedup per capacity, detailed model next to the paper's
/// §7.1 peak-throughput methodology (the Fig. 11 headline numbers).
[[nodiscard]] TextTable fig11_summary_table(const FigureData& data);

/// Average PIM energy saving per capacity (the Fig. 12 headline).
[[nodiscard]] TextTable fig12_summary_table(const FigureData& data);

/// The Fig. 11 shape claims (capacity ordering, PIM-vs-GPU wins, the
/// §7.3 Elastic-Riemann deficit). Claims whose benchmarks are absent
/// from `data` are skipped, so a reduced sweep evaluates what it can.
[[nodiscard]] std::vector<ShapeClaim> fig11_claims(const FigureData& data);

/// The Fig. 12 shape claims (energy savings incl. the §7.4 non-monotone
/// right-sizing pattern).
[[nodiscard]] std::vector<ShapeClaim> fig12_claims(const FigureData& data);

}  // namespace wavepim::eval
