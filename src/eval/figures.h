#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/wavepim.h"
#include "mapping/config.h"

namespace wavepim::eval {

/// One qualitative claim the paper's evaluation makes (a Fig. 11/12
/// trend), evaluated against the model. The figure benches and the
/// paper_eval driver consume the same claim list, so a bench PASS and a
/// matrix-report PASS agree by construction.
struct ShapeClaim {
  std::string claim;
  bool pass = false;
};

/// The comparison grids behind Figs. 11/12: one compare_all() result per
/// benchmark, platform order identical in each.
struct FigureData {
  std::vector<mapping::Problem> problems;
  std::vector<std::vector<core::ComparisonRow>> grids;
};

/// Runs the platform sweep for `problems` over `steps` time steps.
[[nodiscard]] FigureData compute_figure_data(
    std::span<const mapping::Problem> problems, std::uint64_t steps = 1024);

/// Fig. 11 main table: normalised execution time (baseline = 1.0), one
/// row per platform, one column per benchmark.
[[nodiscard]] TextTable fig11_table(const FigureData& data);

/// Fig. 12 main table: normalised energy.
[[nodiscard]] TextTable fig12_table(const FigureData& data);

/// Average PIM speedup per capacity, detailed model next to the paper's
/// §7.1 peak-throughput methodology (the Fig. 11 headline numbers).
[[nodiscard]] TextTable fig11_summary_table(const FigureData& data);

/// Average PIM energy saving per capacity (the Fig. 12 headline).
[[nodiscard]] TextTable fig12_summary_table(const FigureData& data);

/// The Fig. 11 shape claims (capacity ordering, PIM-vs-GPU wins, the
/// §7.3 Elastic-Riemann deficit). Claims whose benchmarks are absent
/// from `data` are skipped, so a reduced sweep evaluates what it can.
[[nodiscard]] std::vector<ShapeClaim> fig11_claims(const FigureData& data);

/// The Fig. 12 shape claims (energy savings incl. the §7.4 non-monotone
/// right-sizing pattern).
[[nodiscard]] std::vector<ShapeClaim> fig12_claims(const FigureData& data);

/// One topology row of the Fig. 14 comparison (H-tree and Bus per paper
/// case, flux time split into its intra/inter-element parts).
struct Fig14Row {
  std::string label;  ///< paper case, e.g. "Acoustic_4 / 512MB (N)"
  pim::Topology topology = pim::Topology::HTree;
  Seconds flux_intra;  ///< star-state compute + in-element staging
  Seconds flux_inter;  ///< neighbour-data transfer makespan
  Seconds step_time;
  double inter_share = 0.0;  ///< percent of flux execution
};

/// The Fig. 14 grid under one interconnect timing backend.
struct Fig14Data {
  pim::NetBackendKind backend = pim::NetBackendKind::Analytic;
  /// Case-major, H-tree row before Bus row.
  std::vector<Fig14Row> rows;
};

/// Runs the paper's four Fig. 14 cases (Acoustic_4 on 512MB/2GB,
/// Elastic-Central_4 on 2GB/8GB — the no-expansion and expansion pairs)
/// through the estimator on each topology under the given backend. With
/// the cycle backend the H-tree-over-bus result is *derived* from
/// queuing dynamics rather than assumed by the analytic formula.
[[nodiscard]] Fig14Data compute_fig14_data(pim::NetBackendKind backend);

/// Fig. 14 main table: one row per (case, topology).
[[nodiscard]] TextTable fig14_table(const Fig14Data& data);

/// The Fig. 14 shape claims: Bus slower on every case, the paper's
/// headline H-tree >= 2x over Bus on flux execution (cycle backend), and
/// expansion raising the inter-element share.
[[nodiscard]] std::vector<ShapeClaim> fig14_claims(const Fig14Data& data);

}  // namespace wavepim::eval
