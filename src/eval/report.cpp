#include "eval/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/error.h"
#include "common/table.h"
#include "common/units.h"

namespace wavepim::eval {

namespace {

using Members = std::vector<std::pair<std::string, json::Value>>;

std::string format_rel(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", rel);
  return buf;
}

const json::Value* require_cells(const json::Value& report,
                                 const char* which) {
  const json::Value* cells = report.find("cells");
  WAVEPIM_REQUIRE(cells != nullptr && cells->is_array(),
                  std::string(which) + " report has no cells array");
  return cells;
}

const std::string& cell_id(const json::Value& cell, const char* which) {
  const json::Value* id = cell.find("id");
  WAVEPIM_REQUIRE(id != nullptr && id->is_string(),
                  std::string(which) + " report has a cell without an id");
  return id->as_string();
}

}  // namespace

json::Value cell_to_json(const CellResult& cell) {
  Members members;
  members.emplace_back("id", json::Value::make_string(cell.id));
  members.emplace_back("kind",
                       json::Value::make_string(to_string(cell.kind)));
  Members labels;
  for (const auto& [key, value] : cell.labels) {
    labels.emplace_back(key, json::Value::make_string(value));
  }
  members.emplace_back("labels", json::Value::make_object(std::move(labels)));
  Members metrics;
  for (const auto& [key, value] : cell.metrics) {
    metrics.emplace_back(key, json::Value::make_number(value));
  }
  members.emplace_back("metrics",
                       json::Value::make_object(std::move(metrics)));
  return json::Value::make_object(std::move(members));
}

json::Value report_to_json(const MatrixResult& result) {
  Members members;
  members.emplace_back("schema", json::Value::make_string(kReportSchema));
  members.emplace_back("matrix",
                       json::Value::make_string(to_string(result.matrix)));
  std::vector<json::Value> cells;
  cells.reserve(result.cells.size());
  for (const auto& cell : result.cells) {
    cells.push_back(cell_to_json(cell));
  }
  members.emplace_back("cells", json::Value::make_array(std::move(cells)));
  std::vector<json::Value> claims;
  for (const auto& claim : result.claims) {
    Members m;
    m.emplace_back("claim", json::Value::make_string(claim.claim));
    m.emplace_back("pass", json::Value::make_bool(claim.pass));
    claims.push_back(json::Value::make_object(std::move(m)));
  }
  members.emplace_back("claims", json::Value::make_array(std::move(claims)));
  return json::Value::make_object(std::move(members));
}

std::string render_tables(const MatrixResult& result) {
  std::string out;
  if (!result.figures.grids.empty()) {
    out += "== Figure 11 — performance (normalized to " +
           result.figures.grids[0][0].platform + ") ==\n\n";
    out += fig11_table(result.figures).to_string();
    out += "\nAverage PIM speedup over the baseline:\n";
    out += fig11_summary_table(result.figures).to_string();
    out += "\n== Figure 12 — energy ==\n\n";
    out += fig12_table(result.figures).to_string();
    out += "\nAverage PIM energy savings over the baseline:\n";
    out += fig12_summary_table(result.figures).to_string();
    out += "\n";
  }

  if (!result.fig14.rows.empty()) {
    out += std::string("== Figure 14 — H-tree vs Bus (") +
           pim::to_string(result.fig14.backend) + " net backend) ==\n\n";
    out += fig14_table(result.fig14).to_string();
    out += "\n";
  }

  bool have_sim = false;
  TextTable sim({"Sim cell", "Total time", "Total energy", "HBM time",
                 "Net words", "Field hash"});
  for (const auto& cell : result.cells) {
    if (cell.kind != CellKind::Sim) {
      continue;
    }
    have_sim = true;
    const auto metric = [&cell](const char* name) {
      for (const auto& [key, value] : cell.metrics) {
        if (key == name) {
          return value;
        }
      }
      return 0.0;
    };
    std::string hash;
    for (const auto& [key, value] : cell.labels) {
      if (key == "field_hash") {
        hash = value;
      }
    }
    sim.add_row({cell.id, format_time(Seconds(metric("total_time_s"))),
                 format_energy(Joules(metric("total_energy_j"))),
                 format_time(Seconds(metric("hbm_time_s"))),
                 TextTable::num(metric("net_words"), 6), hash});
  }
  if (have_sim) {
    out += "== Functional-simulation conformance cells ==\n\n";
    out += sim.to_string();
    out += "\n";
  }

  if (!result.claims.empty()) {
    out += "== Shape claims ==\n\n";
    for (const auto& claim : result.claims) {
      out += std::string("  [") + (claim.pass ? "PASS" : "FAIL") + "] " +
             claim.claim + "\n";
    }
  }
  return out;
}

DiffResult diff_reports(const json::Value& baseline,
                        const json::Value& current,
                        const DiffOptions& options) {
  const json::Value* base_cells = require_cells(baseline, "baseline");
  const json::Value* cur_cells = require_cells(current, "current");

  std::map<std::string, const json::Value*> base_by_id;
  for (const auto& cell : base_cells->as_array()) {
    base_by_id[cell_id(cell, "baseline")] = &cell;
  }

  DiffResult result;
  TextTable table({"Cell", "Field", "Baseline", "Current", "Rel dev"});
  const auto flag = [&](const std::string& id, const std::string& field,
                        const std::string& base, const std::string& cur,
                        const std::string& dev) {
    table.add_row({id, field, base, cur, dev});
  };

  std::size_t matched = 0;
  for (const auto& cell : cur_cells->as_array()) {
    const std::string& id = cell_id(cell, "current");
    const auto it = base_by_id.find(id);
    if (it == base_by_id.end()) {
      ++result.added;
      continue;
    }
    ++matched;
    ++result.compared;
    const json::Value& base = *it->second;

    // Labels: exact string equality (the field hash rides here, so any
    // bit-level divergence of the functional simulator fails the gate).
    const json::Value* base_labels = base.find("labels");
    const json::Value* cur_labels = cell.find("labels");
    if (base_labels != nullptr && base_labels->is_object()) {
      for (const auto& [key, value] : base_labels->as_object()) {
        const json::Value* cur_value =
            cur_labels != nullptr ? cur_labels->find(key) : nullptr;
        if (cur_value == nullptr || !cur_value->is_string()) {
          ++result.regressions;
          flag(id, key, value.as_string(), "(missing)", "label");
        } else if (cur_value->as_string() != value.as_string()) {
          ++result.regressions;
          flag(id, key, value.as_string(), cur_value->as_string(), "label");
        }
      }
    }

    // Metrics: relative deviation against the larger magnitude.
    const json::Value* base_metrics = base.find("metrics");
    const json::Value* cur_metrics = cell.find("metrics");
    if (base_metrics == nullptr || !base_metrics->is_object()) {
      continue;
    }
    for (const auto& [key, value] : base_metrics->as_object()) {
      const json::Value* cur_value =
          cur_metrics != nullptr ? cur_metrics->find(key) : nullptr;
      if (cur_value == nullptr || !cur_value->is_number()) {
        ++result.regressions;
        flag(id, key, TextTable::num(value.as_number(), 6), "(missing)",
             "metric");
        continue;
      }
      const double b = value.as_number();
      const double c = cur_value->as_number();
      const double scale = std::max(std::abs(b), std::abs(c));
      const double rel = scale > 0.0 ? std::abs(c - b) / scale : 0.0;
      result.worst = std::max(result.worst, rel);
      if (rel > options.tolerance) {
        ++result.regressions;
        flag(id, key, TextTable::num(b, 8), TextTable::num(c, 8),
             format_rel(rel));
      }
    }
  }
  result.ignored = static_cast<int>(base_by_id.size() - matched);

  std::string text;
  if (table.num_rows() > 0) {
    text += table.to_string();
  }
  char line[192];
  std::snprintf(line, sizeof(line),
                "%d cell(s) compared, %d regression(s), %d new, "
                "%d baseline cell(s) not run; worst relative deviation "
                "%.3g (tolerance %.3g)\n",
                result.compared, result.regressions, result.added,
                result.ignored, result.worst, options.tolerance);
  text += line;
  result.table = std::move(text);
  return result;
}

json::Value merge_baseline(const json::Value* existing,
                           const json::Value& current) {
  const json::Value* cur_cells = require_cells(current, "current");
  std::map<std::string, const json::Value*> cur_by_id;
  for (const auto& cell : cur_cells->as_array()) {
    cur_by_id[cell_id(cell, "current")] = &cell;
  }

  std::vector<json::Value> merged;
  if (existing != nullptr) {
    for (const auto& cell : require_cells(*existing, "baseline")->as_array()) {
      const auto it = cur_by_id.find(cell_id(cell, "baseline"));
      if (it != cur_by_id.end()) {
        merged.push_back(*it->second);
        cur_by_id.erase(it);
      } else {
        merged.push_back(cell);
      }
    }
  }
  for (const auto& cell : cur_cells->as_array()) {
    const std::string& id = cell_id(cell, "current");
    if (cur_by_id.find(id) != cur_by_id.end()) {
      merged.push_back(cell);
    }
  }

  Members members;
  members.emplace_back("schema", json::Value::make_string(kReportSchema));
  const json::Value* matrix = current.find("matrix");
  members.emplace_back("matrix", matrix != nullptr
                                     ? *matrix
                                     : json::Value::make_string("full"));
  members.emplace_back("cells", json::Value::make_array(std::move(merged)));
  const json::Value* claims = current.find("claims");
  if (claims != nullptr && claims->is_array() &&
      !claims->as_array().empty()) {
    members.emplace_back("claims", *claims);
  } else if (existing != nullptr) {
    const json::Value* old_claims = existing->find("claims");
    members.emplace_back("claims", old_claims != nullptr
                                       ? *old_claims
                                       : json::Value::make_array({}));
  } else {
    members.emplace_back("claims", json::Value::make_array({}));
  }
  return json::Value::make_object(std::move(members));
}

}  // namespace wavepim::eval
