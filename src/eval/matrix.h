#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mapping/config.h"
#include "mapping/simulation.h"

namespace wavepim::eval {

/// Which model family produces a cell's metrics.
///
///  * `Paper` — the analytic estimator + GPU roofline stack behind
///    Figs. 11/12: one scenario per paper benchmark, one cell per
///    platform row of the comparison grid.
///  * `Sim`   — the bit-true functional simulator on a small mesh: one
///    scenario per (physics x expansion x boundary x materials x
///    residency window x execution tier) point, one cell per scenario.
enum class CellKind : std::uint8_t { Paper, Sim };

[[nodiscard]] const char* to_string(CellKind kind);

/// Per-element material variation of a sim scenario. `Layered` splits
/// the mesh into two horizontal material layers (the heterogeneous
/// media the paper's LUT path exists for).
enum class Materials : std::uint8_t { Uniform, Layered };

[[nodiscard]] const char* to_string(Materials materials);

/// One point of the evaluation matrix (see CellKind for the two
/// families). A scenario is a pure description — `run_scenario` in
/// runner.h turns it into metric cells.
struct Scenario {
  CellKind kind = CellKind::Paper;
  mapping::Problem problem{dg::ProblemKind::Acoustic, 4, 8};

  /// Paper cells: projected run length (the paper evaluates 1024 steps).
  std::uint64_t steps = 1024;

  // Sim-cell axes.
  mapping::ExpansionMode expansion = mapping::ExpansionMode::None;
  mesh::Boundary boundary = mesh::Boundary::Periodic;
  Materials materials = Materials::Uniform;
  /// 0 = fully resident; otherwise the chip is capped at this many
  /// blocks, forcing the batched residency window (over-capacity axis).
  std::uint32_t block_limit = 0;
  mapping::ExecPath exec = mapping::ExecPath::Compiled;
  /// Interconnect timing backend (pricing-only: cycle cells reproduce
  /// the analytic cells' field hashes exactly; only the network channel
  /// and the `net_*` link metrics move).
  pim::NetBackendKind net_backend = pim::NetBackendKind::Analytic;
  int sim_steps = 2;

  /// Stable scenario identifier, e.g. `paper/Acoustic_4` or
  /// `sim/acoustic-l2/N/periodic/uniform/win32/compiled`. Cell ids are
  /// derived from it (paper scenarios append the platform name; cycle
  /// net-backend cells append `/net-cycle` so the analytic ids — and the
  /// committed baseline cells keyed by them — are untouched).
  [[nodiscard]] std::string id() const;
};

/// Matrix selection: `Reduced` is the CI gate (small meshes, a subset
/// of paper benchmarks, all four execution tiers, one over-capacity
/// window); `Full` is the complete cross product incl. both level-5
/// paper benchmarks and the extended sim axes, and carries enough
/// benchmarks to evaluate the Fig. 11/12 shape claims.
enum class MatrixKind : std::uint8_t { Reduced, Full };

[[nodiscard]] const char* to_string(MatrixKind kind);
[[nodiscard]] bool parse_matrix(std::string_view name, MatrixKind& out);

/// Enumerates the scenarios of a matrix. Deterministic order; every
/// scenario id is unique, and the reduced matrix is a subset of the
/// full one (guarded by tests/eval/matrix_test.cpp).
[[nodiscard]] std::vector<Scenario> build_matrix(MatrixKind kind);

}  // namespace wavepim::eval
