#include "eval/runner.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "dg/material.h"
#include "mesh/structured_mesh.h"

namespace wavepim::eval {

namespace {

/// Deterministic non-trivial initial state — the BatchConformance
/// suite's seed, so matrix cells and the conformance tests exercise the
/// same trajectories.
dg::Field seeded_state(const mapping::PimSimulation& sim) {
  dg::Field u(sim.mesh().num_elements(), sim.setup().problem().num_vars(),
              static_cast<std::size_t>(sim.setup().ref().num_nodes()));
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::size_t v = 0; v < u.num_vars(); ++v) {
      for (std::size_t n = 0; n < u.nodes_per_element(); ++n) {
        u.value(e, v, n) =
            0.01f * static_cast<float>((e * 131 + v * 17 + n * 3) % 97) -
            0.25f;
      }
    }
  }
  return u;
}

/// FNV-1a over the field's float bit patterns: a compact bit-exact
/// witness of the nodal state (any FP divergence flips it).
std::string field_hash(const dg::Field& field) {
  std::uint64_t h = 1469598103934665603ull;
  for (const float f : field.flat()) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Builds the scenario's simulation (uniform or two-layer media).
std::unique_ptr<mapping::PimSimulation> make_simulation(
    const Scenario& s) {
  pim::ChipConfig chip = pim::chip_512mb();
  chip.block_limit = s.block_limit;
  chip.net_backend = s.net_backend;
  if (s.materials == Materials::Uniform) {
    return std::make_unique<mapping::PimSimulation>(s.problem, s.expansion,
                                                    chip, s.boundary);
  }
  // Layered media: upper half of the mesh (z above the midplane) is a
  // stiffer, denser material — multiple coefficient classes per run.
  mesh::StructuredMesh mesh(s.problem.refinement_level, 1.0, s.boundary);
  const std::uint32_t half = (1u << s.problem.refinement_level) / 2;
  if (dg::is_elastic(s.problem.kind)) {
    dg::MaterialField<dg::ElasticMaterial> mats(
        mesh.num_elements(), {.lambda = 2.0, .mu = 1.0, .rho = 1.0});
    for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
      if (mesh.coords_of(e)[2] >= half) {
        mats.set(e, {.lambda = 4.0, .mu = 2.0, .rho = 2.0});
      }
    }
    return std::make_unique<mapping::PimSimulation>(s.problem, s.expansion,
                                                    chip, mats, s.boundary);
  }
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    if (mesh.coords_of(e)[2] >= half) {
      mats.set(e, {.kappa = 4.0, .rho = 2.0});
    }
  }
  return std::make_unique<mapping::PimSimulation>(s.problem, s.expansion,
                                                  chip, mats, s.boundary);
}

CellResult run_sim_cell(const Scenario& s, const RunOptions& options) {
  auto sim = make_simulation(s);
  sim->set_num_threads(options.threads);
  sim->set_exec_path(s.exec);
  // Word cells run under the full differential witness: every phase
  // application is re-executed bit-serially and hash-compared, and the
  // counters land in the cell so the pinned matrix asserts zero
  // mismatches forever.
  if (s.exec == mapping::ExecPath::Word) {
    sim->set_witness_interval(1);
  }
  sim->load_state(seeded_state(*sim));
  for (int i = 0; i < s.sim_steps; ++i) {
    sim->step(2.0e-4);
  }
  const dg::Field out = sim->read_state();

  CellResult cell;
  cell.id = s.id();
  cell.kind = CellKind::Sim;
  cell.labels.emplace_back("exec", mapping::to_string(s.exec));
  cell.labels.emplace_back("expansion", mapping::to_string(s.expansion));
  cell.labels.emplace_back("boundary", s.boundary == mesh::Boundary::Periodic
                                           ? "periodic"
                                           : "reflective");
  cell.labels.emplace_back("materials", to_string(s.materials));
  cell.labels.emplace_back(
      "residency", sim->residency().is_resident() ? "resident" : "windowed");
  // The backend label (like the `net_*` link metrics below) is only
  // attached to cycle cells, keeping analytic cells byte-identical to
  // the pre-seam baseline.
  if (s.net_backend == pim::NetBackendKind::Cycle) {
    cell.labels.emplace_back("net_backend", pim::to_string(s.net_backend));
  }
  cell.labels.emplace_back("field_hash", field_hash(out));

  const auto& costs = sim->costs();
  const auto add_cost = [&cell](const char* name, const pim::OpCost& cost) {
    cell.metrics.emplace_back(std::string(name) + "_time_s",
                              cost.time.value());
    cell.metrics.emplace_back(std::string(name) + "_energy_j",
                              cost.energy.value());
  };
  add_cost("volume", costs.volume);
  add_cost("flux", costs.flux);
  add_cost("integration", costs.integration);
  add_cost("network", costs.network);
  add_cost("total", costs.total());
  add_cost("hbm", costs.hbm);

  const auto& net = sim->net_stats();
  cell.metrics.emplace_back("net_schedules",
                            static_cast<double>(net.schedules));
  cell.metrics.emplace_back("net_transfers",
                            static_cast<double>(net.transfers));
  cell.metrics.emplace_back("net_words", static_cast<double>(net.words));
  cell.metrics.emplace_back("net_serial_s", net.serial_sum.value());
  if (s.net_backend == pim::NetBackendKind::Cycle) {
    cell.metrics.emplace_back("net_overlap",
                              costs.network.time.value() > 0.0
                                  ? net.serial_sum.value() /
                                        costs.network.time.value()
                                  : 1.0);
    cell.metrics.emplace_back("net_stall_s", net.stall_time.value());
    cell.metrics.emplace_back("net_max_utilization", net.max_utilization);
    cell.metrics.emplace_back("net_peak_queue",
                              static_cast<double>(net.peak_queue));
  }

  const auto& residency = sim->residency();
  cell.metrics.emplace_back("window_slices",
                            static_cast<double>(residency.window()));
  cell.metrics.emplace_back("num_slices",
                            static_cast<double>(residency.num_slices()));
  cell.metrics.emplace_back("slice_loads",
                            static_cast<double>(residency.slice_loads()));
  cell.metrics.emplace_back("slice_stores",
                            static_cast<double>(residency.slice_stores()));
  cell.metrics.emplace_back("bytes_staged",
                            static_cast<double>(residency.bytes_staged()));
  if (s.exec == mapping::ExecPath::Word) {
    const auto& ws = sim->witness_stats();
    cell.metrics.emplace_back("witness_checks",
                              static_cast<double>(ws.checks));
    cell.metrics.emplace_back("witness_blocks_checked",
                              static_cast<double>(ws.blocks_checked));
    cell.metrics.emplace_back("witness_mismatches",
                              static_cast<double>(ws.mismatches));
  }
  return cell;
}

std::vector<CellResult> run_paper_cells(const Scenario& s,
                                        FigureData* figures) {
  const auto grid = core::System::compare_all(s.problem, s.steps);
  std::vector<CellResult> cells;
  cells.reserve(grid.size());
  for (const auto& row : grid) {
    CellResult cell;
    cell.id = s.id() + "/" + row.platform;
    cell.kind = CellKind::Paper;
    cell.labels.emplace_back("platform", row.platform);
    cell.labels.emplace_back("class", row.is_pim ? "pim" : "gpu");
    cell.metrics.emplace_back("step_time_s", row.step_time.value());
    cell.metrics.emplace_back("total_time_s", row.total_time.value());
    cell.metrics.emplace_back("total_energy_j", row.total_energy.value());
    cell.metrics.emplace_back("speedup", row.speedup);
    cell.metrics.emplace_back("energy_saving", row.energy_saving);
    cell.metrics.emplace_back("normalized_time", row.normalized_time);
    cell.metrics.emplace_back("normalized_energy", row.normalized_energy);
    if (row.is_pim) {
      cell.metrics.emplace_back("step_time_peak_method_s",
                                row.step_time_peak_method.value());
    }
    cells.push_back(std::move(cell));
  }
  if (figures != nullptr) {
    figures->problems.push_back(s.problem);
    figures->grids.push_back(grid);
  }
  return cells;
}

}  // namespace

std::vector<CellResult> run_scenario(const Scenario& scenario,
                                     const RunOptions& options,
                                     FigureData* figures) {
  if (options.progress) {
    options.progress(scenario);
  }
  if (scenario.kind == CellKind::Paper) {
    return run_paper_cells(scenario, figures);
  }
  return {run_sim_cell(scenario, options)};
}

MatrixResult run_matrix(MatrixKind kind,
                        std::span<const Scenario> scenarios,
                        const RunOptions& options) {
  MatrixResult result;
  result.matrix = kind;
  for (const auto& scenario : scenarios) {
    auto cells = run_scenario(scenario, options, &result.figures);
    for (auto& cell : cells) {
      result.cells.push_back(std::move(cell));
    }
  }
  // The averaged claims (capacity ordering, headline speedups) are
  // statements about the paper's full six-benchmark sweep; a subset run
  // (the reduced matrix) would evaluate different averages, so claims
  // are only emitted when every paper benchmark is present.
  bool complete = !result.figures.grids.empty();
  for (const auto& paper : mapping::paper_benchmarks()) {
    bool found = false;
    for (const auto& problem : result.figures.problems) {
      found = found || problem.name() == paper.name();
    }
    complete = complete && found;
  }
  if (complete) {
    for (auto& claim : fig11_claims(result.figures)) {
      result.claims.push_back(std::move(claim));
    }
    for (auto& claim : fig12_claims(result.figures)) {
      result.claims.push_back(std::move(claim));
    }
    // Fig. 14 rides the complete sweep too, computed by the *cycle*
    // backend: the H-tree-over-bus headline is derived from queuing
    // dynamics instead of being an input to the analytic formula.
    result.fig14 = compute_fig14_data(pim::NetBackendKind::Cycle);
    for (auto& claim : fig14_claims(result.fig14)) {
      result.claims.push_back(std::move(claim));
    }
  }
  return result;
}

}  // namespace wavepim::eval
