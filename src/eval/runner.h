#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "eval/figures.h"
#include "eval/matrix.h"

namespace wavepim::eval {

/// One evaluated matrix cell. Labels are exact-match facts (the field
/// hash, the execution tier, the chosen Table 5 config); metrics are
/// numeric and compared against a baseline with a relative tolerance.
/// Both keep insertion order so a serialised cell is byte-stable.
struct CellResult {
  std::string id;
  CellKind kind = CellKind::Paper;
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> metrics;
};

struct RunOptions {
  /// Worker threads for the functional simulator cells: 1 = serial,
  /// 0 = the process-global pool. Metrics are identical for any value
  /// (guarded by tests/eval/determinism_test.cpp).
  std::size_t threads = 0;
  /// Called before each scenario runs (progress reporting).
  std::function<void(const Scenario&)> progress;
};

/// Runs one scenario. Paper scenarios produce one cell per platform row
/// of the comparison grid (and append their grid to `figures` when
/// non-null); sim scenarios produce exactly one cell.
[[nodiscard]] std::vector<CellResult> run_scenario(const Scenario& scenario,
                                                   const RunOptions& options,
                                                   FigureData* figures);

/// A fully evaluated matrix: every cell, the Fig. 11/12 grids of the
/// paper scenarios, the cycle-backend Fig. 14 grid (complete runs only),
/// and the shape-claim verdicts those grids support.
struct MatrixResult {
  MatrixKind matrix = MatrixKind::Reduced;
  std::vector<CellResult> cells;
  FigureData figures;
  Fig14Data fig14;  ///< empty unless all paper benchmarks were run
  std::vector<ShapeClaim> claims;
};

[[nodiscard]] MatrixResult run_matrix(MatrixKind kind,
                                      std::span<const Scenario> scenarios,
                                      const RunOptions& options = {});

}  // namespace wavepim::eval
